// Package mem implements the simulated physical/virtual memory of the
// machine: a sparse 64-bit address space backed by fixed-size pages,
// with word-granularity accessors and a bump allocator.
//
// Each simulated process owns one Space. All threads of a process share
// it. The host-side harness also reads Spaces directly after a run to
// extract instrumentation buffers the simulated program wrote (the
// analogue of reading a results file the real benchmark produced).
//
// Pages are stored as arrays of 64-bit little-endian words — the only
// access granularity the ISA has — so Read64/Write64 are single
// indexed loads/stores rather than byte loops. A one-entry last-page
// cache on each of the read and write paths removes the page-map
// lookup from hit-dominated access streams, and dirty-page tracking
// makes Snapshot/Restore cost proportional to the pages actually
// touched between runs rather than to total guest memory (the
// copy-on-write contract the runner's worker pools rely on).
package mem

import "fmt"

// PageSize is the backing page granularity in bytes. It is a power of
// two and at least 8 so that 8-byte words never straddle pages given
// 8-byte alignment.
const PageSize = 1 << 12

// PageWords is the page size in 64-bit words.
const PageWords = PageSize / 8

// PageData is the word-level backing store of one page, index i
// holding the little-endian word at byte offset 8i.
type PageData [PageWords]uint64

// page is one backing page plus its dirty mark: mark == Space.gen
// exactly when the page has already been recorded in the dirty list of
// the current snapshot generation, so the write barrier costs one
// compare per write after the first.
type page struct {
	words PageData
	mark  uint64
}

// Space is a sparse simulated address space. The zero value is not
// usable; call NewSpace.
type Space struct {
	pages map[uint64]*page
	brk   uint64 // next allocation address

	// gen is the snapshot generation, bumped by Snapshot and Restore.
	// It validates the hot-page caches and the per-page dirty marks:
	// nothing is swept on a generation change, stale state simply stops
	// comparing equal. Starts at 1 so a fresh page's zero mark is never
	// "already dirty".
	gen uint64
	// active is the snapshot incremental Restore rewinds to; dirty and
	// created record the page bases written to / materialized since it
	// was taken (only maintained while active is non-nil).
	active  *Snapshot
	dirty   []uint64
	created []uint64

	// One-entry last-page caches. The read cache is valid until a
	// Restore (which may delete pages); the write cache is valid only
	// within the generation whose dirty barrier it passed.
	rBase uint64
	rPage *page
	wBase uint64
	wPage *page
	wGen  uint64

	// pcache is a small direct-mapped page-pointer cache serving
	// ReadPage/WritePage — the CPU cores' translation-hint refill path.
	// Several cores share one Space (threads of a process), so their
	// interleaved refills thrash a single entry; a few indexed slots
	// keep them off the page map. Entries hold base+1 (zero = invalid)
	// and are cleared whenever pages may be deleted (adoptBaseline).
	pcache [pcacheSize]pcacheEntry
}

const pcacheSize = 16 // power of two

type pcacheEntry struct {
	base uint64 // page base + 1; zero = invalid
	p    *page
}

// NewSpace returns an empty address space. Allocations start at a
// non-zero base so that address 0 stays invalid (a useful tripwire).
func NewSpace() *Space {
	return &Space{
		pages: make(map[uint64]*page),
		brk:   0x1000,
		gen:   1,
	}
}

// pageFor returns the page based at base (which must be page-aligned),
// materializing it if needed.
func (s *Space) pageFor(base uint64) *page {
	p, ok := s.pages[base]
	if !ok {
		p = new(page)
		s.pages[base] = p
		if s.active != nil {
			s.created = append(s.created, base)
		}
	}
	return p
}

// pageForWrite is pageFor plus the dirty barrier: the first write to a
// page in each snapshot generation records it for incremental Restore.
func (s *Space) pageForWrite(base uint64) *page {
	p := s.pageFor(base)
	if p.mark != s.gen {
		p.mark = s.gen
		if s.active != nil {
			s.dirty = append(s.dirty, base)
		}
	}
	return p
}

// Alloc reserves size bytes aligned to 8 and returns the base address.
// It never fails; the space is as large as uint64.
func (s *Space) Alloc(size uint64) uint64 {
	s.brk = (s.brk + 7) &^ 7
	addr := s.brk
	s.brk += size
	return addr
}

// AllocWords reserves n 8-byte words and returns the base address.
func (s *Space) AllocWords(n uint64) uint64 { return s.Alloc(n * 8) }

// Brk returns the current allocation high-water mark.
func (s *Space) Brk() uint64 { return s.brk }

// Read64 loads the 8-byte little-endian word at addr. addr must be
// 8-byte aligned; unaligned access panics (simulated programs are
// generated, so this is a bug trap rather than a runtime condition).
func (s *Space) Read64(addr uint64) uint64 {
	CheckAligned(addr)
	base := addr &^ uint64(PageSize-1)
	p := s.rPage
	if p == nil || s.rBase != base {
		p = s.pageFor(base)
		s.rPage, s.rBase = p, base
	}
	return p.words[(addr&(PageSize-1))>>3]
}

// Write64 stores the 8-byte little-endian word v at addr (8-byte
// aligned).
func (s *Space) Write64(addr, v uint64) {
	CheckAligned(addr)
	p := s.writePage(addr)
	p.words[(addr&(PageSize-1))>>3] = v
}

// writePage resolves addr's page through the write-path cache; on a
// hit the dirty barrier has already run this generation.
func (s *Space) writePage(addr uint64) *page {
	base := addr &^ uint64(PageSize-1)
	if s.wGen == s.gen && s.wBase == base && s.wPage != nil {
		return s.wPage
	}
	p := s.pageForWrite(base)
	s.wPage, s.wBase, s.wGen = p, base, s.gen
	return p
}

// Add64 adds delta to the word at addr and returns the new value. The
// page is resolved once for the read-modify-write.
func (s *Space) Add64(addr, delta uint64) uint64 {
	CheckAligned(addr)
	p := s.writePage(addr)
	i := (addr & (PageSize - 1)) >> 3
	v := p.words[i] + delta
	p.words[i] = v
	return v
}

// ReadWords reads n consecutive 8-byte words starting at addr,
// resolving each spanned page once.
func (s *Space) ReadWords(addr uint64, n int) []uint64 {
	CheckAligned(addr)
	out := make([]uint64, n)
	for i := 0; i < n; {
		base := addr &^ uint64(PageSize-1)
		off := int((addr & (PageSize - 1)) >> 3)
		take := PageWords - off
		if rem := n - i; take > rem {
			take = rem
		}
		copy(out[i:i+take], s.pageFor(base).words[off:off+take])
		i += take
		addr += uint64(take) * 8
	}
	return out
}

// WriteWords writes the words consecutively starting at addr,
// resolving each spanned page (and running its dirty barrier) once.
func (s *Space) WriteWords(addr uint64, words []uint64) {
	CheckAligned(addr)
	for i := 0; i < len(words); {
		base := addr &^ uint64(PageSize-1)
		off := int((addr & (PageSize - 1)) >> 3)
		take := PageWords - off
		if rem := len(words) - i; take > rem {
			take = rem
		}
		copy(s.pageForWrite(base).words[off:off+take], words[i:i+take])
		i += take
		addr += uint64(take) * 8
	}
}

// PageCount returns the number of backing pages materialized so far.
// Useful in tests to confirm sparseness.
func (s *Space) PageCount() int { return len(s.pages) }

// Gen returns the space's snapshot generation. It changes whenever a
// page pointer handed out by ReadPage/WritePage may have been
// invalidated (Snapshot or Restore); holders revalidate by comparing.
func (s *Space) Gen() uint64 { return s.gen }

// ReadPage returns the word array backing addr's page for read-only
// use. The pointer stays valid — and its contents coherent with
// Read64/Write64 — until the space's Gen changes. Used by the CPU
// core's per-core translation hint to keep hit-dominated access
// streams off the page map entirely.
func (s *Space) ReadPage(addr uint64) *PageData {
	base := addr &^ uint64(PageSize-1)
	e := &s.pcache[(base/PageSize)&(pcacheSize-1)]
	if e.base != base+1 {
		e.p = s.pageFor(base)
		e.base = base + 1
	}
	return &e.p.words
}

// WritePage is ReadPage for writable use: the page's dirty barrier
// runs now, covering every direct store to the returned array for the
// current generation. The pointer must be dropped when Gen changes.
func (s *Space) WritePage(addr uint64) *PageData {
	base := addr &^ uint64(PageSize-1)
	e := &s.pcache[(base/PageSize)&(pcacheSize-1)]
	if e.base != base+1 {
		e.p = s.pageFor(base)
		e.base = base + 1
	}
	p := e.p
	// Dirty barrier, exactly as pageForWrite runs it: the cache only
	// short-circuits the page-map lookup, never the barrier.
	if p.mark != s.gen {
		p.mark = s.gen
		if s.active != nil {
			s.dirty = append(s.dirty, base)
		}
	}
	return &p.words
}

// Snapshot is a frozen copy of a Space's full state, taken with
// Space.Snapshot and reapplied with Space.Restore. The runner's worker
// pools use it to reuse one built workload across many runs: build
// once, snapshot, then Restore before each run instead of paying the
// whole program/emitter/allocation construction again.
type Snapshot struct {
	pages map[uint64]*PageData
	brk   uint64
}

// Snapshot captures the space's current contents and allocation mark.
// The returned snapshot owns copies of every page; later writes to the
// space do not leak into it. The snapshot also becomes the space's
// restore baseline: from here on the space tracks dirtied and
// newly-materialized pages so Restore back to this snapshot touches
// only those.
func (s *Space) Snapshot() *Snapshot {
	snap := &Snapshot{pages: make(map[uint64]*PageData, len(s.pages)), brk: s.brk}
	for base, p := range s.pages {
		cp := new(PageData)
		*cp = p.words
		snap.pages[base] = cp
	}
	s.adoptBaseline(snap)
	return snap
}

// adoptBaseline resets dirty tracking against snap and invalidates
// every outstanding page handle by bumping the generation.
func (s *Space) adoptBaseline(snap *Snapshot) {
	s.gen++
	s.active = snap
	s.dirty = s.dirty[:0]
	s.created = s.created[:0]
	s.rPage = nil
	s.wPage = nil
	s.pcache = [pcacheSize]pcacheEntry{}
}

// Restore rewinds the space to exactly the snapshot's state: pages
// materialized since are dropped, surviving pages are restored byte
// for byte, and the allocation mark rewinds. After Restore the space
// is indistinguishable from the one Snapshot saw.
//
// Restoring the space's current baseline (the common worker-pool loop:
// one Snapshot, then Restore before every run) is incremental — cost
// scales with the pages written or created since, not with the space's
// size. Restoring any other snapshot falls back to a full sweep and
// adopts that snapshot as the new baseline.
func (s *Space) Restore(snap *Snapshot) {
	if snap == s.active {
		for _, base := range s.dirty {
			if orig, ok := snap.pages[base]; ok {
				s.pages[base].words = *orig
			}
			// Pages dirtied but absent from the snapshot were created
			// since it was taken; the created sweep deletes them.
		}
		for _, base := range s.created {
			delete(s.pages, base)
		}
		s.brk = snap.brk
		s.adoptBaseline(snap)
		return
	}

	// Full restore against a foreign snapshot.
	for base, p := range s.pages {
		orig, ok := snap.pages[base]
		if !ok {
			delete(s.pages, base)
			continue
		}
		p.words = *orig
	}
	for base, orig := range snap.pages {
		if _, ok := s.pages[base]; !ok {
			p := new(page)
			p.words = *orig
			s.pages[base] = p
		}
	}
	s.brk = snap.brk
	s.adoptBaseline(snap)
}

// CheckAligned panics unless addr is 8-byte aligned — the bug trap
// every 64-bit accessor (and the CPU core's fast path) runs first.
func CheckAligned(addr uint64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned 64-bit access at %#x", addr))
	}
}
