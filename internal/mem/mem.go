// Package mem implements the simulated physical/virtual memory of the
// machine: a sparse 64-bit address space backed by fixed-size pages,
// with word-granularity accessors and a bump allocator.
//
// Each simulated process owns one Space. All threads of a process share
// it. The host-side harness also reads Spaces directly after a run to
// extract instrumentation buffers the simulated program wrote (the
// analogue of reading a results file the real benchmark produced).
package mem

import "fmt"

// PageSize is the backing page granularity in bytes. It is a power of
// two and at least 8 so that 8-byte words never straddle pages given
// 8-byte alignment.
const PageSize = 1 << 12

// Space is a sparse simulated address space. The zero value is not
// usable; call NewSpace.
type Space struct {
	pages map[uint64]*[PageSize]byte
	brk   uint64 // next allocation address
}

// NewSpace returns an empty address space. Allocations start at a
// non-zero base so that address 0 stays invalid (a useful tripwire).
func NewSpace() *Space {
	return &Space{
		pages: make(map[uint64]*[PageSize]byte),
		brk:   0x1000,
	}
}

func (s *Space) page(addr uint64) *[PageSize]byte {
	base := addr &^ uint64(PageSize-1)
	p, ok := s.pages[base]
	if !ok {
		p = new([PageSize]byte)
		s.pages[base] = p
	}
	return p
}

// Alloc reserves size bytes aligned to 8 and returns the base address.
// It never fails; the space is as large as uint64.
func (s *Space) Alloc(size uint64) uint64 {
	s.brk = (s.brk + 7) &^ 7
	addr := s.brk
	s.brk += size
	return addr
}

// AllocWords reserves n 8-byte words and returns the base address.
func (s *Space) AllocWords(n uint64) uint64 { return s.Alloc(n * 8) }

// Brk returns the current allocation high-water mark.
func (s *Space) Brk() uint64 { return s.brk }

// Read64 loads the 8-byte little-endian word at addr. addr must be
// 8-byte aligned; unaligned access panics (simulated programs are
// generated, so this is a bug trap rather than a runtime condition).
func (s *Space) Read64(addr uint64) uint64 {
	checkAligned(addr)
	p := s.page(addr)
	off := addr & (PageSize - 1)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(p[off+uint64(i)])
	}
	return v
}

// Write64 stores the 8-byte little-endian word v at addr (8-byte
// aligned).
func (s *Space) Write64(addr, v uint64) {
	checkAligned(addr)
	p := s.page(addr)
	off := addr & (PageSize - 1)
	for i := 0; i < 8; i++ {
		p[off+uint64(i)] = byte(v >> (8 * i))
	}
}

// Add64 adds delta to the word at addr and returns the new value.
func (s *Space) Add64(addr, delta uint64) uint64 {
	v := s.Read64(addr) + delta
	s.Write64(addr, v)
	return v
}

// ReadWords reads n consecutive 8-byte words starting at addr.
func (s *Space) ReadWords(addr uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Read64(addr + uint64(i)*8)
	}
	return out
}

// WriteWords writes the words consecutively starting at addr.
func (s *Space) WriteWords(addr uint64, words []uint64) {
	for i, w := range words {
		s.Write64(addr+uint64(i)*8, w)
	}
}

// PageCount returns the number of backing pages materialized so far.
// Useful in tests to confirm sparseness.
func (s *Space) PageCount() int { return len(s.pages) }

// Snapshot is a frozen copy of a Space's full state, taken with
// Space.Snapshot and reapplied with Space.Restore. The runner's worker
// pools use it to reuse one built workload across many runs: build
// once, snapshot, then Restore before each run instead of paying the
// whole program/emitter/allocation construction again.
type Snapshot struct {
	pages map[uint64]*[PageSize]byte
	brk   uint64
}

// Snapshot captures the space's current contents and allocation mark.
// The returned snapshot owns copies of every page; later writes to the
// space do not leak into it.
func (s *Space) Snapshot() *Snapshot {
	snap := &Snapshot{pages: make(map[uint64]*[PageSize]byte, len(s.pages)), brk: s.brk}
	for base, p := range s.pages {
		cp := new([PageSize]byte)
		*cp = *p
		snap.pages[base] = cp
	}
	return snap
}

// Restore rewinds the space to exactly the snapshot's state: pages
// materialized since are dropped, surviving pages are restored byte
// for byte, and the allocation mark rewinds. After Restore the space
// is indistinguishable from the one Snapshot saw.
func (s *Space) Restore(snap *Snapshot) {
	for base, p := range s.pages {
		orig, ok := snap.pages[base]
		if !ok {
			delete(s.pages, base)
			continue
		}
		*p = *orig
	}
	for base, orig := range snap.pages {
		if _, ok := s.pages[base]; !ok {
			cp := new([PageSize]byte)
			*cp = *orig
			s.pages[base] = cp
		}
	}
	s.brk = snap.brk
}

func checkAligned(addr uint64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned 64-bit access at %#x", addr))
	}
}
