package mem

import "testing"

// benchSnapshotRestore measures one Restore after dirtying the given
// number of a 256-page working set's pages. With dirty-page tracking
// the cost must scale with pages touched, not total guest memory.
func benchSnapshotRestore(b *testing.B, dirtyPages int) {
	const pages = 256
	s := NewSpace()
	base := s.Alloc(pages * PageSize)
	for i := uint64(0); i < pages; i++ {
		s.Write64((base+i*PageSize)&^7, i+1)
	}
	snap := s.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := uint64(0); j < uint64(dirtyPages); j++ {
			s.Write64((base+j*PageSize+8)&^7, uint64(i)+j)
		}
		s.Restore(snap)
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	b.Run("clean", func(b *testing.B) { benchSnapshotRestore(b, 0) })
	b.Run("dirty-10%", func(b *testing.B) { benchSnapshotRestore(b, 26) })
	b.Run("dirty-100%", func(b *testing.B) { benchSnapshotRestore(b, 256) })
}

func BenchmarkRead64(b *testing.B) {
	s := NewSpace()
	addr := s.AllocWords(1)
	s.Write64(addr, 42)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += s.Read64(addr)
	}
	_ = sink
}

func BenchmarkWrite64(b *testing.B) {
	s := NewSpace()
	addr := s.AllocWords(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write64(addr, uint64(i))
	}
}
