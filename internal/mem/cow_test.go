package mem

import (
	"math/rand"
	"testing"
)

// applyOps drives a scripted random write set against a space. The
// same seed must produce the same mutations on any space with the
// same layout, which is what lets the property test compare a
// dirty-tracked restored space against a freshly built one.
func applyOps(s *Space, base uint64, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0: // write inside the snapshotted working set
			s.Write64(base+uint64(rng.Intn(512))*8, rng.Uint64())
		case 1: // write far away, materializing fresh pages
			s.Write64(uint64(1+rng.Intn(1<<16))*PageSize, rng.Uint64())
		case 2: // read-modify-write
			s.Add64(base+uint64(rng.Intn(512))*8, rng.Uint64())
		case 3: // bulk write spanning page boundaries
			words := make([]uint64, 1+rng.Intn(3*PageWords))
			for j := range words {
				words[j] = rng.Uint64()
			}
			s.WriteWords(base+uint64(rng.Intn(256))*8, words)
		case 4: // allocate and touch
			a := s.Alloc(uint64(1+rng.Intn(4*PageSize)) &^ 7)
			s.Write64(a, rng.Uint64())
		case 5: // reads populate the read cache and may materialize pages
			_ = s.Read64(uint64(1+rng.Intn(1<<16)) * PageSize)
		}
	}
}

// buildRef builds the canonical pre-snapshot state shared by the
// property test's fresh and pooled spaces.
func buildRef() (*Space, uint64) {
	s := NewSpace()
	base := s.AllocWords(512)
	for i := uint64(0); i < 512; i++ {
		s.Write64(base+i*8, i*0x9e3779b97f4a7c15)
	}
	// A second, distant region so restores must handle sparse layouts.
	s.Write64(1<<33, 0xfeed)
	return s, base
}

func requireEqualSpaces(t *testing.T, round int, fresh, pooled *Space, base uint64) {
	t.Helper()
	if fresh.PageCount() != pooled.PageCount() {
		t.Fatalf("round %d: page counts differ: fresh %d, restored %d",
			round, fresh.PageCount(), pooled.PageCount())
	}
	if fresh.Brk() != pooled.Brk() {
		t.Fatalf("round %d: brk differs: fresh %#x, restored %#x", round, fresh.Brk(), pooled.Brk())
	}
	for i := uint64(0); i < 512; i++ {
		if f, p := fresh.Read64(base+i*8), pooled.Read64(base+i*8); f != p {
			t.Fatalf("round %d word %d: fresh %#x, restored %#x", round, i, f, p)
		}
	}
	if f, p := fresh.Read64(1<<33), pooled.Read64(1<<33); f != p {
		t.Fatalf("round %d far word: fresh %#x, restored %#x", round, f, p)
	}
}

// TestDirtyRestoreEquivalenceProperty is the COW correctness property:
// after any random mutation set, an incremental (dirty-tracked)
// Restore must leave the space indistinguishable from a freshly built
// one — same words, same brk, and the same page count (pages
// materialized after the snapshot must be gone, not merely zeroed).
// Repeated snapshot/restore rounds on one space exercise reuse of the
// dirty and created lists across generations.
func TestDirtyRestoreEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0117))
	fresh, fbase := buildRef()
	pooled, pbase := buildRef()
	if fbase != pbase {
		t.Fatal("reference builds diverged")
	}
	snap := pooled.Snapshot()
	for round := 0; round < 50; round++ {
		applyOps(pooled, pbase, rng, 200)
		pooled.Restore(snap)
		requireEqualSpaces(t, round, fresh, pooled, pbase)
	}
}

// TestRestoreForeignSnapshot pins the fallback path: restoring a
// snapshot that is not the space's current baseline must still be
// exact, and must adopt that snapshot so the next Restore of it is
// incremental again.
func TestRestoreForeignSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf0e1))
	fresh, base := buildRef()
	s, sbase := buildRef()
	snapA := s.Snapshot()

	// Move to a different baseline, mutate, then come back to snapA.
	applyOps(s, sbase, rng, 100)
	_ = s.Snapshot() // snapB becomes the active baseline
	applyOps(s, sbase, rng, 100)
	s.Restore(snapA) // foreign: full-sweep path
	requireEqualSpaces(t, 0, fresh, s, base)

	// snapA was adopted: this round uses the incremental path.
	applyOps(s, sbase, rng, 100)
	s.Restore(snapA)
	requireEqualSpaces(t, 1, fresh, s, base)
}

// TestRestoreInvalidatesPageHandles pins the generation contract that
// the CPU core's translation hint relies on: Gen changes whenever an
// outstanding ReadPage/WritePage pointer may be stale, and a fresh
// handle after Restore observes the restored contents.
func TestRestoreInvalidatesPageHandles(t *testing.T) {
	s := NewSpace()
	addr := s.AllocWords(1)
	s.Write64(addr, 7)
	snap := s.Snapshot()
	g0 := s.Gen()

	wp := s.WritePage(addr)
	wp[0] = 99
	if got := s.Read64(addr); got != 99 {
		t.Fatalf("page handle store invisible: %d", got)
	}
	s.Restore(snap)
	if s.Gen() == g0 {
		t.Fatal("Restore did not change Gen")
	}
	if got := s.Read64(addr); got != 7 {
		t.Fatalf("restore lost value: %d", got)
	}
	if got := s.ReadPage(addr)[0]; got != 7 {
		t.Fatalf("fresh page handle sees stale value: %d", got)
	}

	s.Snapshot()
	if s.Gen() == g0 {
		t.Fatal("Snapshot did not change Gen")
	}
}

// TestRestoreDropsReadMaterializedPages: pages materialized by reads
// alone (never written) must also disappear on Restore, or PageCount
// equivalence with a fresh build breaks.
func TestRestoreDropsReadMaterializedPages(t *testing.T) {
	s := NewSpace()
	s.Write64(0x1000, 1)
	snap := s.Snapshot()
	if s.Read64(1<<20) != 0 {
		t.Fatal("fresh page not zero")
	}
	if s.PageCount() != 2 {
		t.Fatalf("read did not materialize a page: %d", s.PageCount())
	}
	s.Restore(snap)
	if s.PageCount() != 1 {
		t.Fatalf("read-materialized page survived restore: %d pages", s.PageCount())
	}
}
