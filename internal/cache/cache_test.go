package cache

import "testing"

func TestColdMissThenHit(t *testing.T) {
	h := NewDefault()
	r := h.Access(0x1000)
	if !r.MissL1 || !r.MissL2 || !r.MissLLC {
		t.Errorf("cold access should miss everywhere: %+v", r)
	}
	if r.Cycles != uint64(DefaultConfig().MemoryCycles) {
		t.Errorf("cold access cost %d, want memory latency %d", r.Cycles, DefaultConfig().MemoryCycles)
	}
	r = h.Access(0x1000)
	if r.MissL1 {
		t.Errorf("second access should hit L1: %+v", r)
	}
	if r.Cycles != uint64(DefaultConfig().L1.HitCycles) {
		t.Errorf("L1 hit cost %d, want %d", r.Cycles, DefaultConfig().L1.HitCycles)
	}
}

func TestSameLineSharesEntry(t *testing.T) {
	h := NewDefault()
	h.Access(0x2000)
	if r := h.Access(0x2000 + 56); r.MissL1 {
		t.Error("access within the same 64B line should hit")
	}
	if r := h.Access(0x2000 + 64); !r.MissL1 {
		t.Error("access to the next line should miss")
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	// Small direct-mapped-ish cache: 2 ways, 2 sets, 64B lines.
	cfg := Config{SizeBytes: 256, LineBytes: 64, Ways: 2, HitCycles: 1}
	c := newLevel(cfg)
	// Three lines mapping to set 0 (stride = nsets*64 = 128).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.access(a)
	c.access(b)
	if !c.access(a) {
		t.Fatal("a should still be resident")
	}
	c.access(d) // evicts LRU = b
	if !c.access(a) {
		t.Error("a (MRU before d) should survive")
	}
	if c.access(b) {
		t.Error("b should have been evicted (LRU)")
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	h := NewDefault()
	// Walk far beyond L1 capacity (32 KiB) but within L2 (256 KiB).
	for addr := uint64(0); addr < 128<<10; addr += 64 {
		h.Access(addr)
	}
	// Re-walk the start: L1 evicted it, L2 should hold it.
	r := h.Access(0)
	if !r.MissL1 {
		t.Error("expected L1 miss after capacity walk")
	}
	if r.MissL2 {
		t.Error("expected L2 hit after 128KiB walk")
	}
}

func TestFlushLine(t *testing.T) {
	h := NewDefault()
	h.Access(0x3000)
	h.FlushLine(0x3000)
	if r := h.Access(0x3000); !r.MissL1 || !r.MissL2 || !r.MissLLC {
		t.Errorf("flushed line should miss everywhere: %+v", r)
	}
}

func TestFlushAll(t *testing.T) {
	h := NewDefault()
	for addr := uint64(0); addr < 4096; addr += 64 {
		h.Access(addr)
	}
	h.FlushAll()
	if r := h.Access(0); !r.MissLLC {
		t.Error("FlushAll should empty every level")
	}
}

func TestMissLatencyOrdering(t *testing.T) {
	cfg := DefaultConfig()
	if !(cfg.L1.HitCycles < cfg.L2.HitCycles &&
		cfg.L2.HitCycles < cfg.LLC.HitCycles &&
		cfg.LLC.HitCycles < cfg.MemoryCycles) {
		t.Error("latencies must increase down the hierarchy")
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{L1: "L1", L2: "L2", LLC: "LLC", Memory: "Memory"} {
		if lv.String() != want {
			t.Errorf("%d renders as %q, want %q", lv, lv.String(), want)
		}
	}
}

func TestNonPowerOfTwoSetsRoundsDown(t *testing.T) {
	// 3 ways * 64B with 384B capacity => 2 sets requested; construction
	// must not panic and must behave as a cache.
	c := newLevel(Config{SizeBytes: 384, LineBytes: 64, Ways: 3, HitCycles: 1})
	if c.access(0) {
		t.Error("first access cannot hit")
	}
	if !c.access(0) {
		t.Error("second access must hit")
	}
}
