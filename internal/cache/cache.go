// Package cache models a per-core cache hierarchy: split L1 (only the
// data side is simulated, since the ISA has no instruction fetch
// traffic), a unified L2, and a shared-by-convention LLC. Caches are
// set-associative with LRU replacement.
//
// The hierarchy returns, for each access, the latency in cycles and the
// set of miss events that occurred, which the CPU feeds into the PMU.
// The model is deliberately simple — no coherence traffic, no MSHRs —
// because the reproduced paper's results depend on access *costs* and
// event *counts*, not on detailed memory-system timing.
package cache

// Level identifies a cache level for miss reporting.
type Level uint8

// Cache levels.
const (
	L1 Level = iota
	L2
	LLC
	Memory
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case Memory:
		return "Memory"
	}
	return "cache?"
}

// Config describes one cache level.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size, power of two
	Ways      int // associativity
	HitCycles int // latency on hit at this level
}

// Result describes the outcome of one access.
type Result struct {
	// Cycles is the total access latency.
	Cycles uint64
	// MissL1, MissL2, MissLLC report which levels missed.
	MissL1  bool
	MissL2  bool
	MissLLC bool
}

// Sets are grouped into chunks of chunkSets, each chunk's tag state
// allocated on first touch. Machines are built per run by the campaign
// worker pools, and eagerly allocating the LLC's thousands of sets
// dominated construction time for short runs.
const (
	chunkSetBits = 6
	chunkSets    = 1 << chunkSetBits
)

// cacheLevel is a single set-associative cache. Tag state lives in
// flat per-chunk arrays: set s occupies the ways
// [(s%chunkSets)*Ways, ...) of chunk s/chunkSets, in LRU order (index
// 0 most recent). Entries store tag+1 so that zero — the state of a
// freshly allocated chunk — means invalid.
type cacheLevel struct {
	cfg       Config
	setMask   uint64
	lineShift uint
	tagShift  uint   // log2(nsets), precomputed off the access path
	hitLat    uint64 // cfg.HitCycles, widened once
	ways      int
	chunkLen  int // ways per chunk: min(chunkSets, nsets) * ways
	chunks    [][]uint64
}

func newLevel(cfg Config) *cacheLevel {
	lines := cfg.SizeBytes / cfg.LineBytes
	nsets := lines / cfg.Ways
	if nsets < 1 {
		nsets = 1
	}
	// nsets must be a power of two for mask indexing.
	for nsets&(nsets-1) != 0 {
		nsets--
	}
	setsPerChunk := nsets
	if setsPerChunk > chunkSets {
		setsPerChunk = chunkSets
	}
	return &cacheLevel{
		cfg:       cfg,
		setMask:   uint64(nsets - 1),
		lineShift: log2(uint64(cfg.LineBytes)),
		tagShift:  log2(uint64(nsets)),
		hitLat:    uint64(cfg.HitCycles),
		ways:      cfg.Ways,
		chunkLen:  setsPerChunk * cfg.Ways,
		chunks:    make([][]uint64, (nsets+chunkSets-1)/chunkSets),
	}
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// setWays returns set si's ways, materializing the chunk if needed.
func (c *cacheLevel) setWays(si uint64) []uint64 {
	ch := c.chunks[si>>chunkSetBits]
	if ch == nil {
		ch = make([]uint64, c.chunkLen)
		c.chunks[si>>chunkSetBits] = ch
	}
	lo := (int(si) & (chunkSets - 1)) * c.ways
	return ch[lo : lo+c.ways : lo+c.ways]
}

// access probes the level and installs the line on miss. Returns true on
// hit.
func (c *cacheLevel) access(addr uint64) bool {
	line := addr >> c.lineShift
	tag := (line >> c.tagShift) + 1
	ws := c.setWays(line & c.setMask)
	// MRU fast path: a hit in way 0 needs no LRU reordering.
	if ws[0] == tag {
		return true
	}
	for i, t := range ws {
		if t == tag {
			// Move to MRU position.
			copy(ws[1:i+1], ws[:i])
			ws[0] = tag
			return true
		}
	}
	// Miss: evict LRU (last way), install at MRU.
	copy(ws[1:], ws[:len(ws)-1])
	ws[0] = tag
	return false
}

// flushLine invalidates the line containing addr if present.
func (c *cacheLevel) flushLine(addr uint64) {
	line := addr >> c.lineShift
	if c.chunks[(line&c.setMask)>>chunkSetBits] == nil {
		return
	}
	tag := (line >> c.tagShift) + 1
	ws := c.setWays(line & c.setMask)
	for i, t := range ws {
		if t == tag {
			ws[i] = 0
			return
		}
	}
}

// Hierarchy is a three-level cache hierarchy plus a memory latency.
type Hierarchy struct {
	l1, l2, llc *cacheLevel
	memCycles   int

	// lastLine is the most recently accessed line number plus one
	// (zero = invalid), with l1Shift/l1Lat copied off *l1. After any
	// access the line is resident at L1's MRU way, so a repeat access
	// is an L1 hit that moves no LRU state and raises no events —
	// Access answers it inline with one compare.
	lastLine uint64
	l1Shift  uint
	l1Lat    uint64
}

// HierarchyConfig configures a Hierarchy.
type HierarchyConfig struct {
	L1, L2, LLC  Config
	MemoryCycles int
}

// DefaultConfig returns a hierarchy resembling a 2011-era x86 core:
// 32 KiB 8-way L1 (4 cycles), 256 KiB 8-way L2 (12 cycles), 8 MiB
// 16-way LLC (40 cycles), 200-cycle memory.
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:           Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitCycles: 4},
		L2:           Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitCycles: 12},
		LLC:          Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, HitCycles: 40},
		MemoryCycles: 200,
	}
}

// NewHierarchy builds a hierarchy from the config.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		l1:        newLevel(cfg.L1),
		l2:        newLevel(cfg.L2),
		llc:       newLevel(cfg.LLC),
		memCycles: cfg.MemoryCycles,
	}
	h.l1Shift = h.l1.lineShift
	h.l1Lat = h.l1.hitLat
	return h
}

// NewDefault builds a hierarchy with DefaultConfig.
func NewDefault() *Hierarchy { return NewHierarchy(DefaultConfig()) }

// Access simulates a load or store to addr and returns latency and miss
// events. Stores are write-allocate and cost the same as loads in this
// model. Small enough to inline: the repeat-line case never leaves the
// caller.
func (h *Hierarchy) Access(addr uint64) Result {
	if addr>>h.l1Shift+1 == h.lastLine {
		return Result{Cycles: h.l1Lat}
	}
	return h.accessSlow(addr)
}

func (h *Hierarchy) accessSlow(addr uint64) Result {
	h.lastLine = addr>>h.l1Shift + 1
	if h.l1.access(addr) {
		return Result{Cycles: h.l1.hitLat}
	}
	r := Result{MissL1: true}
	if h.l2.access(addr) {
		r.Cycles = h.l2.hitLat
		return r
	}
	r.MissL2 = true
	if h.llc.access(addr) {
		r.Cycles = h.llc.hitLat
		return r
	}
	r.MissLLC = true
	r.Cycles = uint64(h.memCycles)
	return r
}

// FlushLine removes the line containing addr from every level. The
// kernel uses it to approximate cache pollution from context switches.
func (h *Hierarchy) FlushLine(addr uint64) {
	if addr>>h.l1Shift+1 == h.lastLine {
		h.lastLine = 0
	}
	h.l1.flushLine(addr)
	h.l2.flushLine(addr)
	h.llc.flushLine(addr)
}

// FlushAll invalidates the entire hierarchy.
func (h *Hierarchy) FlushAll() {
	h.lastLine = 0
	for _, lv := range []*cacheLevel{h.l1, h.l2, h.llc} {
		for i := range lv.chunks {
			lv.chunks[i] = nil
		}
	}
}
