// Package cache models a per-core cache hierarchy: split L1 (only the
// data side is simulated, since the ISA has no instruction fetch
// traffic), a unified L2, and a shared-by-convention LLC. Caches are
// set-associative with LRU replacement.
//
// The hierarchy returns, for each access, the latency in cycles and the
// set of miss events that occurred, which the CPU feeds into the PMU.
// The model is deliberately simple — no coherence traffic, no MSHRs —
// because the reproduced paper's results depend on access *costs* and
// event *counts*, not on detailed memory-system timing.
package cache

// Level identifies a cache level for miss reporting.
type Level uint8

// Cache levels.
const (
	L1 Level = iota
	L2
	LLC
	Memory
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case Memory:
		return "Memory"
	}
	return "cache?"
}

// Config describes one cache level.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size, power of two
	Ways      int // associativity
	HitCycles int // latency on hit at this level
}

// Result describes the outcome of one access.
type Result struct {
	// Cycles is the total access latency.
	Cycles uint64
	// MissL1, MissL2, MissLLC report which levels missed.
	MissL1  bool
	MissL2  bool
	MissLLC bool
}

// set is one associative set; ways are kept in LRU order, index 0 most
// recent.
type set struct {
	tags  []uint64
	valid []bool
}

// cacheLevel is a single set-associative cache.
type cacheLevel struct {
	cfg       Config
	sets      []set
	setMask   uint64
	lineShift uint
}

func newLevel(cfg Config) *cacheLevel {
	lines := cfg.SizeBytes / cfg.LineBytes
	nsets := lines / cfg.Ways
	if nsets < 1 {
		nsets = 1
	}
	// nsets must be a power of two for mask indexing.
	for nsets&(nsets-1) != 0 {
		nsets--
	}
	c := &cacheLevel{
		cfg:       cfg,
		sets:      make([]set, nsets),
		setMask:   uint64(nsets - 1),
		lineShift: log2(uint64(cfg.LineBytes)),
	}
	for i := range c.sets {
		c.sets[i] = set{
			tags:  make([]uint64, cfg.Ways),
			valid: make([]bool, cfg.Ways),
		}
	}
	return c
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// access probes the level and installs the line on miss. Returns true on
// hit.
func (c *cacheLevel) access(addr uint64) bool {
	line := addr >> c.lineShift
	s := &c.sets[line&c.setMask]
	tag := line >> log2(uint64(len(c.sets)))
	for i, ok := range s.valid {
		if ok && s.tags[i] == tag {
			// Move to MRU position.
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return true
		}
	}
	// Miss: evict LRU (last way), install at MRU.
	copy(s.tags[1:], s.tags[:len(s.tags)-1])
	copy(s.valid[1:], s.valid[:len(s.valid)-1])
	s.tags[0] = tag
	s.valid[0] = true
	return false
}

// flushLine invalidates the line containing addr if present.
func (c *cacheLevel) flushLine(addr uint64) {
	line := addr >> c.lineShift
	s := &c.sets[line&c.setMask]
	tag := line >> log2(uint64(len(c.sets)))
	for i, ok := range s.valid {
		if ok && s.tags[i] == tag {
			s.valid[i] = false
			return
		}
	}
}

// Hierarchy is a three-level cache hierarchy plus a memory latency.
type Hierarchy struct {
	l1, l2, llc *cacheLevel
	memCycles   int
}

// HierarchyConfig configures a Hierarchy.
type HierarchyConfig struct {
	L1, L2, LLC  Config
	MemoryCycles int
}

// DefaultConfig returns a hierarchy resembling a 2011-era x86 core:
// 32 KiB 8-way L1 (4 cycles), 256 KiB 8-way L2 (12 cycles), 8 MiB
// 16-way LLC (40 cycles), 200-cycle memory.
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:           Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitCycles: 4},
		L2:           Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitCycles: 12},
		LLC:          Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, HitCycles: 40},
		MemoryCycles: 200,
	}
}

// NewHierarchy builds a hierarchy from the config.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		l1:        newLevel(cfg.L1),
		l2:        newLevel(cfg.L2),
		llc:       newLevel(cfg.LLC),
		memCycles: cfg.MemoryCycles,
	}
}

// NewDefault builds a hierarchy with DefaultConfig.
func NewDefault() *Hierarchy { return NewHierarchy(DefaultConfig()) }

// Access simulates a load or store to addr and returns latency and miss
// events. Stores are write-allocate and cost the same as loads in this
// model.
func (h *Hierarchy) Access(addr uint64) Result {
	if h.l1.access(addr) {
		return Result{Cycles: uint64(h.l1.cfg.HitCycles)}
	}
	r := Result{MissL1: true}
	if h.l2.access(addr) {
		r.Cycles = uint64(h.l2.cfg.HitCycles)
		return r
	}
	r.MissL2 = true
	if h.llc.access(addr) {
		r.Cycles = uint64(h.llc.cfg.HitCycles)
		return r
	}
	r.MissLLC = true
	r.Cycles = uint64(h.memCycles)
	return r
}

// FlushLine removes the line containing addr from every level. The
// kernel uses it to approximate cache pollution from context switches.
func (h *Hierarchy) FlushLine(addr uint64) {
	h.l1.flushLine(addr)
	h.l2.flushLine(addr)
	h.llc.flushLine(addr)
}

// FlushAll invalidates the entire hierarchy.
func (h *Hierarchy) FlushAll() {
	for _, lv := range []*cacheLevel{h.l1, h.l2, h.llc} {
		for i := range lv.sets {
			for j := range lv.sets[i].valid {
				lv.sets[i].valid[j] = false
			}
		}
	}
}
