package limit_test

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
)

const (
	polIters = 20
	polK     = 40
)

// TestOpenPolicyFallbackOnExhaustion over-subscribes the pinned-slot
// ledger permanently: a thread wanting two LiMiT counters on a
// 1-capacity kernel. The setup block must retry with backoff, then
// degrade — close what it got, reopen everything through the
// multiplexed perf path, raise the estimate flag, and run the fallback
// body. It must never panic, never fault, and never produce an
// unflagged number.
func TestOpenPolicyFallbackOnExhaustion(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.VirtSlotCapacity = 1
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})

	space := mem.NewSpace()
	table := limit.AllocTable(space, 2)
	flag := space.AllocWords(1)
	buf := space.AllocWords(polIters)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	c0 := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.AddCounter(limit.UserCounter(pmu.EvCycles))
	e.SetOpenPolicy(limit.OpenPolicy{
		FallbackLabel: "deg",
		FlagRef:       ref.Absolute(flag),
	})
	e.EmitInit()
	// Exact body — must never run in this test.
	b.MovImm(isa.R12, int64(buf))
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	e.EmitMeasureStart(isa.R4, isa.R5, c0)
	b.Compute(polK)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, c0)
	b.Shl(isa.R13, isa.R8, 3)
	b.Add(isa.R13, isa.R13, isa.R12)
	b.Store(isa.R13, 0, isa.R6)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, polIters)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	// Degraded body: the same measurements through SysPerfRead.
	b.Label("deg")
	b.MovImm(isa.R12, int64(buf))
	b.MovImm(isa.R8, 0)
	b.Label("dloop")
	b.MovImm(isa.R0, 0)
	b.Syscall(kernel.SysPerfRead)
	b.Mov(isa.R4, isa.R0)
	b.Compute(polK)
	b.MovImm(isa.R0, 0)
	b.Syscall(kernel.SysPerfRead)
	b.Sub(isa.R6, isa.R0, isa.R4)
	b.Shl(isa.R13, isa.R8, 3)
	b.Add(isa.R13, isa.R13, isa.R12)
	b.Store(isa.R13, 0, isa.R6)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, polIters)
	b.Br(isa.CondLT, isa.R8, isa.R9, "dloop")
	b.Halt()
	e.EmitFinish()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "deg", 0, 1)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}

	if got := space.Read64(flag); got != 1 {
		t.Fatalf("estimate flag = %d, want 1 (fallback taken)", got)
	}
	cs := th.Counters()
	if len(cs) != 2 {
		t.Fatalf("thread has %d counters, want 2", len(cs))
	}
	for i, tc := range cs {
		if tc.Kind != kernel.KindPerf || !tc.Estimated {
			t.Errorf("counter %d after fallback: kind %v estimated %v, want flagged perf",
				i, tc.Kind, tc.Estimated)
		}
	}
	// The host-side reader reports the degradation too.
	if _, est, err := limit.ThreadValue(th, 0); err != nil || !est {
		t.Errorf("ThreadValue est=%v err=%v, want flagged estimate", est, err)
	}
	if _, est, err := limit.ProcessValue(proc, m.Kern.Threads(), 0); err != nil || !est {
		t.Errorf("ProcessValue est=%v err=%v, want flagged estimate", est, err)
	}
	// The degraded path still measures: every delta covers at least the
	// compute kernel.
	for i := 0; i < polIters; i++ {
		if d := space.Read64(buf + uint64(i)*8); d < polK {
			t.Errorf("degraded delta[%d] = %d, want >= %d", i, d, polK)
		}
	}
	rs := m.Kern.Resources()
	// Retries+1 attempts on the second counter were all denied.
	if rs.SlotDenials != 4 {
		t.Errorf("SlotDenials = %d, want 4 (default 3 retries + first attempt)", rs.SlotDenials)
	}
	if rs.SlotsInUse != 0 {
		t.Errorf("slots leaked after fallback + exit: %+v", rs)
	}
}

// TestOpenPolicyRetrySucceedsAfterRelease exercises the transient
// half: another thread holds the only slot for a while, then releases
// it. The policy's bounded backoff must outlast the holder, land the
// open on a retry, and run the exact rdpmc path — estimate flag down,
// measurements exact.
func TestOpenPolicyRetrySucceedsAfterRelease(t *testing.T) {
	kcfg := kernel.DefaultConfig()
	kcfg.VirtSlotCapacity = 1
	kcfg.Quantum = 5_000
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})

	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)
	holderTable := space.AllocWords(1)
	flag := space.AllocWords(1)
	buf := space.AllocWords(polIters)

	b := isa.NewBuilder()
	b.Label("holder")
	b.Syscall(kernel.SysLimitInit)
	b.MovImm(isa.R0, int64(pmu.EvInstructions))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.MovImm(isa.R2, int64(holderTable))
	b.Syscall(kernel.SysLimitOpen)
	b.Compute(30_000) // hold the slot across several quanta
	b.MovImm(isa.R0, 0)
	b.Syscall(kernel.SysLimitClose)
	b.Halt()

	b.Label("meas")
	e := limit.NewEmitter(b, limit.ModeStock, table)
	c0 := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.SetOpenPolicy(limit.OpenPolicy{
		Retries:       6, // backoff budget 2k..128k cycles, far past the holder
		FallbackLabel: "deg",
		FlagRef:       ref.Absolute(flag),
	})
	e.EmitInit()
	b.MovImm(isa.R12, int64(buf))
	b.MovImm(isa.R8, 0)
	b.Label("loop")
	e.EmitMeasureStart(isa.R4, isa.R5, c0)
	b.Compute(polK)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, c0)
	b.Shl(isa.R13, isa.R8, 3)
	b.Add(isa.R13, isa.R13, isa.R12)
	b.Store(isa.R13, 0, isa.R6)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, polIters)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.Halt()
	b.Label("deg")
	b.Halt() // must not be reached: exhaustion here was transient
	e.EmitFinish()

	prog := b.MustBuild()
	proc := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(proc, "holder", prog.MustEntry("holder"), 1)
	meas := m.Kern.Spawn(proc, "meas", prog.MustEntry("meas"), 2)
	res := m.Run(machine.RunLimits{MaxSteps: 10_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("run failed: %+v", res)
	}

	if got := space.Read64(flag); got != 0 {
		t.Fatalf("estimate flag = %d, want 0 (retry succeeded)", got)
	}
	rs := m.Kern.Resources()
	if rs.SlotDenials == 0 {
		t.Fatal("no slot denial recorded: the holder never contended")
	}
	if rs.SlotsInUse != 0 {
		t.Errorf("slots leaked: %+v", rs)
	}
	cs := meas.Counters()
	if len(cs) != 1 || cs[0].Kind != kernel.KindLimit || cs[0].Estimated {
		t.Fatalf("measurer counter after retry: %+v, want exact LiMiT", cs[0])
	}
	if _, est, err := limit.ThreadValue(meas, 0); err != nil || est {
		t.Errorf("ThreadValue est=%v err=%v, want exact", est, err)
	}
	r := e.Regions()[0]
	want := uint64(polK) + uint64(r[1]-r[0])
	for i := 0; i < polIters; i++ {
		d := space.Read64(buf + uint64(i)*8)
		if d < want || d > want+256 {
			t.Errorf("delta[%d] = %d outside [%d,%d]", i, d, want, want+256)
		}
	}
}
