// Package limit implements the paper's primary contribution: the LiMiT
// userspace library for precise, lightweight performance-counter
// access.
//
// A LiMiT counter is a 64-bit virtualized event count assembled from
// two pieces: the live hardware counter (read with a single rdpmc-class
// instruction, enabled for userspace by the kernel patch) and a 64-bit
// virtual counter in user memory into which the kernel folds one
// write-limit chunk (2^31 events on stock hardware) at every overflow
// interrupt. A full read is therefore the three-instruction sequence
//
//	rdpmc  dst, #idx        ; live hardware count
//	load   scratch, table+8*idx ; folded overflow base
//	add    dst, dst, scratch
//
// which costs low tens of nanoseconds — one to two orders of magnitude
// less than a perf_event read syscall. The sequence is not naturally
// atomic: a context switch or overflow fold between its instructions
// would combine inconsistent halves. LiMiT registers each sequence's
// PC range with the kernel as a *fixup region*; the patched kernel
// rewinds an interrupted thread's PC to the region start, so the read
// simply re-executes. The fast path pays nothing for this.
//
// The Emitter assembles all of that into a program built with
// isa.Builder: counter setup, read sequences (with automatic region
// collection and registration), region-delta measurement helpers, and
// the userspace overflow handler used in SignalUser mode. Host-side
// helpers extract final 64-bit values after a run.
//
// The paper's proposed hardware enhancements shorten the sequence:
// with 64-bit writable counters (e1) the virtual counter and the fixup
// disappear and a read is one instruction; with destructive reads (e2)
// an interval measurement is a single read-and-reset instruction
// instead of two reads and a subtract.
package limit

import (
	"fmt"
	"sync/atomic"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
	"limitsim/internal/telemetry"
)

// Metrics splits the host-side read-decode path by outcome: values
// assembled from an exact LiMiT virtual counter versus values flagged
// as degraded estimates (OpenPolicy fallback, degraded inheritance, or
// perf multiplexing). The ratio is the reporting-side view of how
// often graceful degradation actually engaged.
type Metrics struct {
	ReadsExact     *telemetry.Counter
	ReadsEstimated *telemetry.Counter
}

// NewMetrics registers the limit metric set on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		ReadsExact:     reg.Counter("limit.reads.exact"),
		ReadsEstimated: reg.Counter("limit.reads.estimated"),
	}
}

// metrics is the package-level attachment point. Host-side decodes run
// outside the simulation (the deterministic event loop never calls
// them), so a single package-level handle is safe and keeps the decode
// helpers' signatures unchanged.
var metrics *Metrics

// SetMetrics attaches a metric set to the decode helpers (nil
// detaches).
func SetMetrics(m *Metrics) { metrics = m }

func countRead(estimated bool) {
	if metrics == nil {
		return
	}
	if estimated {
		metrics.ReadsEstimated.Inc()
	} else {
		metrics.ReadsExact.Inc()
	}
}

// Mode selects the read-sequence shape, normally derived from the
// PMU's feature set via ModeFor.
type Mode uint8

// Emitter modes.
const (
	// ModeStock targets 2011 hardware: 48-bit counters, 31-bit writes.
	// Reads are rdpmc+load+add inside a registered fixup region.
	ModeStock Mode = iota
	// Mode64Bit targets enhancement e1: reads are a bare rdpmc.
	Mode64Bit
	// ModeDestructive targets enhancement e2: interval measurements are
	// a single destructive rdpmc; point-in-time reads fall back to the
	// stock sequence.
	ModeDestructive
)

func (m Mode) String() string {
	switch m {
	case ModeStock:
		return "stock"
	case Mode64Bit:
		return "64bit"
	case ModeDestructive:
		return "destructive"
	}
	return "mode?"
}

// ModeFor picks the best mode the PMU supports.
func ModeFor(f pmu.Features) Mode {
	if f.WriteWidth >= 64 && f.CounterWidth >= 64 {
		return Mode64Bit
	}
	if f.DestructiveReads {
		return ModeDestructive
	}
	return ModeStock
}

// CounterSpec declares one virtualized counter.
type CounterSpec struct {
	Event       pmu.Event
	CountUser   bool
	CountKernel bool
}

// UserCounter is the conventional user-ring-only spec for an event.
func UserCounter(ev pmu.Event) CounterSpec {
	return CounterSpec{Event: ev, CountUser: true}
}

// AllRingsCounter counts the event in both rings.
func AllRingsCounter(ev pmu.Event) CounterSpec {
	return CounterSpec{Event: ev, CountUser: true, CountKernel: true}
}

// emitterSeq is atomic: independent programs are built concurrently by
// the runner's worker pool, and label uniqueness must survive that.
// Labels resolve to PCs inside a single builder, so the numbering gaps
// concurrency introduces never reach the generated program bytes.
var emitterSeq atomic.Int64

// Emitter generates LiMiT library code into an isa.Builder. One
// Emitter serves one program body; its counter table is a ref.Ref:
// absolute for single-thread programs, or register-relative (per-thread
// base register, initialized before EmitInit) when multiple threads
// share the body — each thread then virtualizes into its own table.
type Emitter struct {
	b        *isa.Builder
	mode     Mode
	table    ref.Ref
	counters []CounterSpec
	regions  [][2]int
	id       int
	finished bool
	handler  bool // emit SIGPMU handler (SignalUser kernels)
	noFixup  bool // ablation: skip fixup-region registration
	policy   *OpenPolicy
}

// OpenPolicy shapes how the setup block reacts to counter-slot
// exhaustion (SysLimitOpen returning kernel.RetAgain). Without a
// policy, setup assumes allocation succeeds — fine under the kernel's
// default unbounded slot ledger. With a policy, setup retries each
// denied open up to Retries times with exponentially growing nanosleep
// backoff (slots return when other threads close counters or exit),
// and if the allocation still fails — or fails permanently — it falls
// back: every already-opened LiMiT counter is closed, every declared
// counter is reopened through the multiplexed perf path at the same
// indices, the word at FlagRef is set to 1 so results are flagged as
// estimates, and control jumps to FallbackLabel instead of the normal
// body. Degraded, never silently wrong.
type OpenPolicy struct {
	// Retries bounds retry attempts per counter (default 3).
	Retries int
	// BackoffCycles is the first retry's nanosleep duration; it doubles
	// on each further attempt (default 2000).
	BackoffCycles int64
	// FallbackLabel is the label the degraded path jumps to after
	// reopening through perf; the code there must read counters with
	// SysPerfRead instead of the rdpmc sequence.
	FallbackLabel string
	// FlagRef is a word the fallback path sets to 1 (the exact path
	// leaves it untouched; allocate it zeroed).
	FlagRef ref.Ref
}

// SetOpenPolicy installs the retry/backoff/fallback policy; call
// before EmitFinish. The setup block then clobbers R0..R5 rather than
// R0..R3.
func (e *Emitter) SetOpenPolicy(p OpenPolicy) {
	if p.FallbackLabel == "" {
		panic("limit: OpenPolicy requires a FallbackLabel")
	}
	if p.Retries <= 0 {
		p.Retries = 3
	}
	if p.BackoffCycles <= 0 {
		p.BackoffCycles = 2000
	}
	e.policy = &p
}

// AllocTable reserves a virtual-counter table for n counters in the
// process address space and returns an absolute reference to it.
func AllocTable(space *mem.Space, n int) ref.Ref {
	return ref.Absolute(space.AllocWords(uint64(n)))
}

// NewEmitter creates an Emitter writing into b with the virtual
// counter table at table. A register-relative table's base register
// must be set before the EmitInit point executes and must not be one
// of R0..R3 (the setup block's scratch registers).
func NewEmitter(b *isa.Builder, mode Mode, table ref.Ref) *Emitter {
	return &Emitter{b: b, mode: mode, table: table, id: int(emitterSeq.Add(1))}
}

// Mode returns the emitter's read-sequence mode.
func (e *Emitter) Mode() Mode { return e.mode }

// Table returns the virtual counter table reference.
func (e *Emitter) Table() ref.Ref { return e.table }

// NumCounters returns how many counters have been declared.
func (e *Emitter) NumCounters() int { return len(e.counters) }

// AddCounter declares a counter and returns its index. All counters
// must be declared before EmitInit.
func (e *Emitter) AddCounter(spec CounterSpec) int {
	e.counters = append(e.counters, spec)
	return len(e.counters) - 1
}

// EnableOverflowSignalHandler makes EmitFinish generate the userspace
// SIGPMU overflow handler and register it; required when the kernel
// runs in kernel.SignalUser overflow mode.
func (e *Emitter) EnableOverflowSignalHandler() { e.handler = true }

// DisableFixupRegistration suppresses the fixup-region registration
// syscalls in the setup block while still emitting read sequences.
// This exists purely for the paper's ablation: it demonstrates the torn
// reads LiMiT's PC-rewind prevents. Never use it for measurement.
func (e *Emitter) DisableFixupRegistration() { e.noFixup = true }

func (e *Emitter) label(s string) string {
	return fmt.Sprintf("limit.%d.%s", e.id, s)
}

// EmitInit emits the jump to the setup block at the current position;
// call it at the thread's entry point. The setup block itself is
// emitted by EmitFinish (after the body, so that all read-sequence
// regions are known) and jumps back to the instruction following this
// one. Setup clobbers R0..R3.
func (e *Emitter) EmitInit() {
	e.b.Jmp(e.label("setup"))
	e.b.Label(e.label("body"))
}

// EmitRead emits a full 64-bit counter read of counter idx into dst.
// In ModeStock the sequence is wrapped in a fixup region (registered by
// EmitFinish) and clobbers scratch; in Mode64Bit it is a single rdpmc
// and scratch is untouched.
func (e *Emitter) EmitRead(dst, scratch isa.Reg, idx int) {
	switch e.mode {
	case Mode64Bit:
		e.b.RdPMC(dst, int64(idx))
	default:
		start := e.b.PC()
		e.b.RdPMC(dst, int64(idx))
		e.table.Word(idx).EmitLoad(e.b, scratch)
		e.b.Add(dst, dst, scratch)
		e.regions = append(e.regions, [2]int{start, e.b.PC()})
	}
}

// EmitIntervalRead emits the end-of-interval read for region
// measurements: it yields the event delta since the previous
// EmitIntervalRead (or since setup) in dst. In ModeDestructive this is
// a single read-and-reset instruction; other modes must pair
// EmitRead calls and subtract, so this helper panics for them (callers
// choose the strategy explicitly via Measure* helpers).
func (e *Emitter) EmitIntervalRead(dst isa.Reg, idx int) {
	if e.mode != ModeDestructive {
		panic("limit: EmitIntervalRead requires ModeDestructive")
	}
	e.b.RdPMCDestructive(dst, int64(idx))
}

// EmitMeasureStart begins a region measurement, leaving the start value
// in startReg. In ModeDestructive it drains the counter with a
// destructive read so the end read returns the delta directly, and
// startReg is set to zero.
func (e *Emitter) EmitMeasureStart(startReg, scratch isa.Reg, idx int) {
	if e.mode == ModeDestructive {
		e.b.RdPMCDestructive(startReg, int64(idx)) // drain
		e.b.MovImm(startReg, 0)
		return
	}
	e.EmitRead(startReg, scratch, idx)
}

// EmitMeasureEnd completes a region measurement started with
// EmitMeasureStart, leaving the event delta in deltaReg (which may
// equal startReg's register only in ModeDestructive). scratch is
// clobbered in ModeStock.
func (e *Emitter) EmitMeasureEnd(deltaReg, startReg, scratch isa.Reg, idx int) {
	if e.mode == ModeDestructive {
		e.b.RdPMCDestructive(deltaReg, int64(idx))
		return
	}
	e.EmitRead(deltaReg, scratch, idx)
	e.b.Sub(deltaReg, deltaReg, startReg)
}

// EmitFinish emits the setup block (and, if enabled, the overflow
// signal handler) and resolves the EmitInit jump. Must be called after
// all reads have been emitted and exactly once.
func (e *Emitter) EmitFinish() {
	if e.finished {
		panic("limit: EmitFinish called twice")
	}
	e.finished = true
	b := e.b

	var handlerLabel string
	if e.handler {
		// The handler runs with R0 = SIGPMU, R1 = counter index. It
		// folds one write-limit chunk (2^31) into the virtual counter.
		handlerLabel = e.label("ovfhandler")
		b.Label(handlerLabel)
		b.BeginSymbol("limit.ovfhandler")
		b.Shl(isa.R1, isa.R1, 3)
		e.table.EmitLea(b, isa.R2)
		b.Add(isa.R2, isa.R2, isa.R1)
		b.Load(isa.R3, isa.R2, 0)
		b.AddImm(isa.R3, isa.R3, 1<<31)
		b.Store(isa.R2, 0, isa.R3)
		b.SigReturn()
		b.EndSymbol()
	}

	b.Label(e.label("setup"))
	b.BeginSymbol("limit.setup")
	// Enable userspace rdpmc (kernel patch).
	b.Syscall(kernel.SysLimitInit)
	// Open each counter against its virtual table slot.
	for i, spec := range e.counters {
		if e.policy == nil {
			b.MovImm(isa.R0, int64(spec.Event))
			b.MovImm(isa.R1, e.specFlags(spec))
			e.table.Word(i).EmitLea(b, isa.R2)
			b.Syscall(kernel.SysLimitOpen)
			continue
		}
		// Retry loop: R4 counts remaining attempts, R5 the next backoff.
		try, okL := e.label(fmt.Sprintf("try%d", i)), e.label(fmt.Sprintf("ok%d", i))
		b.MovImm(isa.R4, int64(e.policy.Retries))
		b.MovImm(isa.R5, e.policy.BackoffCycles)
		b.Label(try)
		b.MovImm(isa.R0, int64(spec.Event))
		b.MovImm(isa.R1, e.specFlags(spec))
		e.table.Word(i).EmitLea(b, isa.R2)
		b.Syscall(kernel.SysLimitOpen)
		b.MovImm(isa.R3, -2) // kernel.RetAgain: transient exhaustion
		b.Br(isa.CondNE, isa.R0, isa.R3, okL)
		b.MovImm(isa.R3, 0)
		b.Br(isa.CondEQ, isa.R4, isa.R3, e.label("fallback"))
		b.Mov(isa.R0, isa.R5)
		b.Syscall(kernel.SysNanosleep)
		b.Add(isa.R5, isa.R5, isa.R5) // exponential backoff
		b.AddImm(isa.R4, isa.R4, -1)
		b.Jmp(try)
		b.Label(okL)
		b.MovImm(isa.R3, -1) // kernel.RetErr: permanent failure degrades too
		b.Br(isa.CondEQ, isa.R0, isa.R3, e.label("fallback"))
	}
	// Register every read-critical region.
	if !e.noFixup {
		for _, r := range e.regions {
			b.MovImm(isa.R0, int64(r[0]))
			b.MovImm(isa.R1, int64(r[1]))
			b.Syscall(kernel.SysLimitRegisterFixup)
		}
	}
	if e.handler {
		b.MovImm(isa.R0, kernel.SIGPMU)
		b.MovLabel(isa.R1, handlerLabel)
		b.Syscall(kernel.SysSigaction)
	}
	b.Jmp(e.label("body"))
	b.EndSymbol()

	if e.policy != nil {
		// Degraded path: return whatever was opened, reopen everything
		// through the multiplexed perf path (closed-slot reuse keeps
		// the indices identical), raise the estimate flag, and enter
		// the fallback body. Fixup regions are never registered — the
		// rdpmc sequence is not executed on this path.
		b.Label(e.label("fallback"))
		b.BeginSymbol("limit.fallback")
		for i := range e.counters {
			b.MovImm(isa.R0, int64(i))
			b.Syscall(kernel.SysLimitClose) // no-op for never-opened indices
		}
		for _, spec := range e.counters {
			b.MovImm(isa.R0, int64(spec.Event))
			b.MovImm(isa.R1, e.specFlags(spec)|int64(kernel.FlagEstimated))
			b.Syscall(kernel.SysPerfOpen)
		}
		b.MovImm(isa.R3, 1)
		e.policy.FlagRef.EmitLea(b, isa.R2)
		b.Store(isa.R2, 0, isa.R3)
		b.Jmp(e.policy.FallbackLabel)
		b.EndSymbol()
	}
}

// specFlags returns the ring-flag argument for a counter spec.
func (e *Emitter) specFlags(spec CounterSpec) int64 {
	flags := int64(0)
	if spec.CountUser {
		flags |= int64(kernel.FlagUser)
	}
	if spec.CountKernel {
		flags |= int64(kernel.FlagKernel)
	}
	return flags
}

// Regions returns the collected read-critical PC ranges (for tests).
func (e *Emitter) Regions() [][2]int { return e.regions }

// FinalValue assembles the final 64-bit value of thread t's LiMiT
// counter idx after a run: the user-memory virtual counter plus the
// thread's saved hardware value.
func FinalValue(t *kernel.Thread, idx int) (uint64, error) {
	cs := t.Counters()
	if idx < 0 || idx >= len(cs) {
		return 0, fmt.Errorf("limit: thread %d has no counter %d", t.ID, idx)
	}
	tc := cs[idx]
	if tc.Kind != kernel.KindLimit {
		return 0, fmt.Errorf("limit: thread %d counter %d is %v, not limit", t.ID, idx, tc.Kind)
	}
	countRead(tc.Estimated)
	return t.Proc.Mem.Read64(tc.TableAddr) + tc.Saved, nil
}

// MustFinalValue is FinalValue but panics on error.
func MustFinalValue(t *kernel.Thread, idx int) uint64 {
	v, err := FinalValue(t, idx)
	if err != nil {
		panic(err)
	}
	return v
}

// ThreadValue returns the final 64-bit value of thread t's counter idx
// regardless of which access path ended up serving it, along with
// whether the value is a degraded estimate rather than an exact count.
// A LiMiT counter is exact (virtual table word + saved remainder)
// unless inheritance flagged it. A perf counter — including counters
// the OpenPolicy fallback or degraded clone inheritance reopened
// through the multiplexed path — is scaled by scheduled-time /
// loaded-time exactly as Linux's time_enabled/time_running estimate,
// and is flagged whenever it multiplexed or was opened by a degraded
// path. Callers get a flagged estimate, never a silently wrong exact-
// looking number.
func ThreadValue(t *kernel.Thread, idx int) (v uint64, estimated bool, err error) {
	cs := t.Counters()
	if idx < 0 || idx >= len(cs) {
		return 0, false, fmt.Errorf("limit: thread %d has no counter %d", t.ID, idx)
	}
	tc := cs[idx]
	switch tc.Kind {
	case kernel.KindLimit:
		countRead(tc.Estimated)
		return t.Proc.Mem.Read64(tc.TableAddr) + tc.Saved, tc.Estimated, nil
	case kernel.KindPerf:
		raw := tc.Acc + tc.Saved
		est := tc.Estimated || tc.Multiplexed()
		if tc.ActiveCycles == 0 {
			countRead(est)
			return 0, est, nil
		}
		if tc.ActiveCycles >= tc.WindowCycles {
			countRead(est)
			return raw, est, nil
		}
		countRead(true)
		return pmu.Scale(raw, tc.WindowCycles, tc.ActiveCycles), true, nil
	default:
		return 0, false, fmt.Errorf("limit: thread %d counter %d is %v", t.ID, idx, tc.Kind)
	}
}

// ProcessValue sums counter idx across every thread of the process
// like ProcessTotal, but tolerates mixed access paths: threads that
// degraded to the perf fallback contribute their scaled estimates, and
// the sum is flagged as an estimate if any contribution was one — the
// reporting-side half of graceful degradation.
func ProcessValue(proc *kernel.Process, threads []*kernel.Thread, idx int) (sum uint64, estimated bool, err error) {
	counted := 0
	for _, t := range threads {
		if t.Proc != proc {
			continue
		}
		cs := t.Counters()
		if idx >= len(cs) || cs[idx].Closed {
			continue
		}
		v, est, err := ThreadValue(t, idx)
		if err != nil {
			return 0, false, err
		}
		sum += v
		estimated = estimated || est
		counted++
	}
	if counted == 0 {
		return 0, false, fmt.Errorf("limit: no thread of process %d holds counter %d", proc.ID, idx)
	}
	return sum, estimated, nil
}

// ProcessTotal implements the paper's process-wide counting: it sums
// LiMiT counter idx over every thread of the process that opened it
// (threads of other processes in the slice are skipped). Because each
// thread's counter is virtualized independently, the sum is exact
// regardless of scheduling, migration, or thread lifetimes — the
// property that lets LiMiT characterize whole applications like MySQL.
func ProcessTotal(proc *kernel.Process, threads []*kernel.Thread, idx int) (uint64, error) {
	var sum uint64
	counted := 0
	for _, t := range threads {
		if t.Proc != proc {
			continue
		}
		cs := t.Counters()
		if idx >= len(cs) || cs[idx].Kind != kernel.KindLimit || cs[idx].Closed {
			continue
		}
		v, err := FinalValue(t, idx)
		if err != nil {
			return 0, err
		}
		sum += v
		counted++
	}
	if counted == 0 {
		return 0, fmt.Errorf("limit: no thread of process %d holds limit counter %d", proc.ID, idx)
	}
	return sum, nil
}
