package limit_test

import (
	"strings"
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
	"limitsim/internal/tls"
)

func TestModeFor(t *testing.T) {
	if m := limit.ModeFor(pmu.DefaultFeatures()); m != limit.ModeStock {
		t.Errorf("stock features -> %v", m)
	}
	if m := limit.ModeFor(pmu.Enhanced64Bit()); m != limit.Mode64Bit {
		t.Errorf("e1 features -> %v", m)
	}
	if m := limit.ModeFor(pmu.EnhancedDestructive()); m != limit.ModeDestructive {
		t.Errorf("e2 features -> %v", m)
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[limit.Mode]string{
		limit.ModeStock: "stock", limit.Mode64Bit: "64bit", limit.ModeDestructive: "destructive",
	} {
		if m.String() != want {
			t.Errorf("%d renders %q", m, m.String())
		}
	}
}

func TestStockReadCollectsRegions(t *testing.T) {
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, ref.Absolute(0x1000))
	ctr := e.AddCounter(limit.UserCounter(pmu.EvCycles))
	e.EmitInit()
	e.EmitRead(isa.R4, isa.R5, ctr)
	e.EmitRead(isa.R6, isa.R5, ctr)
	b.Halt()
	e.EmitFinish()
	b.MustBuild()

	regions := e.Regions()
	if len(regions) != 2 {
		t.Fatalf("collected %d regions, want 2", len(regions))
	}
	for i, r := range regions {
		if r[1] <= r[0] {
			t.Errorf("region %d empty: %v", i, r)
		}
	}
	if regions[0][1] > regions[1][0] {
		t.Error("regions overlap")
	}
}

func Test64BitReadEmitsNoRegions(t *testing.T) {
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.Mode64Bit, ref.Absolute(0x1000))
	ctr := e.AddCounter(limit.UserCounter(pmu.EvCycles))
	e.EmitInit()
	before := b.PC()
	e.EmitRead(isa.R4, isa.R5, ctr)
	if b.PC()-before != 1 {
		t.Errorf("e1 read is %d instructions, want 1", b.PC()-before)
	}
	b.Halt()
	e.EmitFinish()
	b.MustBuild()
	if len(e.Regions()) != 0 {
		t.Error("single-instruction reads need no fixup regions")
	}
}

func TestIntervalReadRequiresDestructive(t *testing.T) {
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, ref.Absolute(0x1000))
	e.AddCounter(limit.UserCounter(pmu.EvCycles))
	defer func() {
		if recover() == nil {
			t.Error("EmitIntervalRead on stock mode should panic")
		}
	}()
	e.EmitIntervalRead(isa.R4, 0)
}

func TestEmitFinishTwicePanics(t *testing.T) {
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, ref.Absolute(0x1000))
	e.EmitInit()
	b.Halt()
	e.EmitFinish()
	defer func() {
		if recover() == nil {
			t.Error("double EmitFinish should panic")
		}
	}()
	e.EmitFinish()
}

func TestFinalValueAcrossThreadExit(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 2)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ci := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	cl := e.AddCounter(limit.UserCounter(pmu.EvLoads))
	e.EmitInit()
	b.MovImm(isa.R1, 0x9000)
	b.Load(isa.R2, isa.R1, 0)
	b.Load(isa.R2, isa.R1, 8)
	b.Load(isa.R2, isa.R1, 16)
	b.Compute(100)
	b.Halt()
	e.EmitFinish()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	res := m.MustRun(machine.RunLimits{})
	if !res.AllDone {
		t.Fatal(res)
	}

	loads, err := limit.FinalValue(th, cl)
	if err != nil {
		t.Fatal(err)
	}
	if loads != 3 {
		t.Errorf("loads counter = %d, want 3", loads)
	}
	instrs := limit.MustFinalValue(th, ci)
	if instrs == 0 || instrs > th.Stats.UserInstructions {
		t.Errorf("instructions counter %d vs ground truth %d", instrs, th.Stats.UserInstructions)
	}
}

func TestFinalValueErrors(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	b := isa.NewBuilder()
	b.MovImm(isa.R0, int64(pmu.EvCycles))
	b.MovImm(isa.R1, int64(kernel.FlagUser))
	b.Syscall(kernel.SysPerfOpen)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	if _, err := limit.FinalValue(th, 5); err == nil {
		t.Error("out-of-range counter index should error")
	}
	if _, err := limit.FinalValue(th, 0); err == nil || !strings.Contains(err.Error(), "not limit") {
		t.Errorf("perf counter misread as limit: %v", err)
	}
}

func TestRegRelativeTablePerThread(t *testing.T) {
	// Two threads share one body; each must virtualize into its own
	// TLS table slot and read back only its own instruction count.
	var layout tls.Layout
	table := layout.Reserve(1)
	out := layout.Reserve(1)
	space := mem.NewSpace()
	layout.Alloc(space, 2)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	layout.EmitProlog(b)
	e.EmitInit()
	// Thread 1 does twice the work of thread 0.
	b.MovImm(isa.R8, 1000)
	b.Mul(isa.R8, isa.R8, tls.SlotReg)
	b.AddImm(isa.R8, isa.R8, 1000)
	b.MovImm(isa.R9, 0)
	b.Label("loop")
	b.Compute(100)
	b.AddImm(isa.R9, isa.R9, 100)
	b.Br(isa.CondLT, isa.R9, isa.R8, "loop")
	e.EmitRead(isa.R4, isa.R5, ctr)
	out.EmitStore(b, isa.R4, isa.R5)
	b.Halt()
	e.EmitFinish()
	prog := b.MustBuild()

	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 900
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
	proc := m.Kern.NewProcess(prog, space)
	for slot := 0; slot < 2; slot++ {
		th := m.Kern.Spawn(proc, "w", 0, uint64(slot+1))
		th.SetReg(tls.SlotReg, uint64(slot))
	}
	m.MustRun(machine.RunLimits{MaxSteps: 10_000_000})

	v0 := space.Read64(out.Resolve(layout.ThreadBase(0)))
	v1 := space.Read64(out.Resolve(layout.ThreadBase(1)))
	if v0 < 1000 || v0 > 1100 {
		t.Errorf("thread 0 measured %d, want ~1030", v0)
	}
	if v1 < 2000 || v1 > 2100 {
		t.Errorf("thread 1 measured %d, want ~2050", v1)
	}
}

func TestDestructiveIntervalAccumulates(t *testing.T) {
	// Sum of destructive interval reads equals one continuous count.
	m := machine.New(machine.Config{NumCores: 1, PMU: pmu.EnhancedDestructive()})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)
	out := space.AllocWords(1)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeDestructive, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.EmitInit()
	e.EmitIntervalRead(isa.R4, ctr) // drain setup counts
	b.MovImm(isa.R7, 0)             // accumulator
	b.MovImm(isa.R8, 0)
	b.MovImm(isa.R9, 10)
	b.Label("loop")
	b.Compute(100)
	e.EmitIntervalRead(isa.R4, ctr)
	b.Add(isa.R7, isa.R7, isa.R4)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Br(isa.CondLT, isa.R8, isa.R9, "loop")
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R7)
	b.Halt()
	e.EmitFinish()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	got := space.Read64(out)
	// 10 iterations x (100 compute + ~6 loop/read instructions).
	if got < 1000 || got > 1100 {
		t.Errorf("accumulated intervals %d, want ~1050", got)
	}
}

func TestOverflowFoldKeepsCountExact(t *testing.T) {
	// Tiny write width forces many folds; the virtualized total must
	// still match per-thread ground truth within the setup prologue.
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = 10
	m := machine.New(machine.Config{NumCores: 1, PMU: feats})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.EmitInit()
	b.Compute(50_000)
	b.Halt()
	e.EmitFinish()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})

	if th.Counters()[0].Overflows < 40 {
		t.Errorf("only %d folds; write width 10 should fold ~49 times", th.Counters()[0].Overflows)
	}
	got := limit.MustFinalValue(th, 0)
	truth := th.Stats.UserInstructions
	if got > truth || truth-got > 40 {
		t.Errorf("folded count %d vs ground truth %d", got, truth)
	}
}

func TestCounterSpecHelpers(t *testing.T) {
	u := limit.UserCounter(pmu.EvLoads)
	if !u.CountUser || u.CountKernel || u.Event != pmu.EvLoads {
		t.Errorf("UserCounter wrong: %+v", u)
	}
	a := limit.AllRingsCounter(pmu.EvCycles)
	if !a.CountUser || !a.CountKernel {
		t.Errorf("AllRingsCounter wrong: %+v", a)
	}
}

func TestSignalModeEmitterHandlerKeepsCountsExact(t *testing.T) {
	// In SignalUser overflow mode, the emitter's generated SIGPMU
	// handler performs the folds. With the stock 31-bit write width the
	// handler adds 2^31 per signal; to exercise it quickly we use a
	// machine whose counters overflow at bit 31 but feed it a counter
	// close to the threshold by pre-running... simpler: run long enough
	// via a compute loop sized to cross 2^31? Too slow. Instead verify
	// the generated handler program structure executes correctly by
	// running in kernel-fold mode and checking the handler is inert,
	// then verify handler-based folding arithmetic directly at a narrow
	// width with a custom constant is covered by the kernel tests; here
	// we assert the handler emits and the program assembles and runs.
	kcfg := kernel.DefaultConfig()
	kcfg.LimitOverflow = kernel.SignalUser
	m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.EnableOverflowSignalHandler()
	e.EmitInit()
	b.Compute(20_000)
	e.EmitRead(isa.R4, isa.R5, ctr)
	b.Halt()
	e.EmitFinish()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	th := m.Kern.Spawn(proc, "w", 0, 1)
	res := m.MustRun(machine.RunLimits{})
	if !res.AllDone {
		t.Fatal(res)
	}
	got := limit.MustFinalValue(th, ctr)
	truth := th.Stats.UserInstructions
	if got > truth || truth-got > 60 {
		t.Errorf("signal-mode count %d vs ground truth %d", got, truth)
	}
}

func TestEmitMeasureStockPair(t *testing.T) {
	// EmitMeasureStart/End in stock mode must yield exact deltas (the
	// quickstart's shape, asserted here at package level).
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)
	out := space.AllocWords(1)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.EmitInit()
	e.EmitMeasureStart(isa.R4, isa.R5, ctr)
	b.Compute(777)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R6)
	b.Halt()
	e.EmitFinish()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})
	if got := space.Read64(out); got != 781 { // 777 + 4-instruction read tail
		t.Errorf("measured %d, want exactly 781", got)
	}
}

func TestEmitMeasureDestructivePair(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1, PMU: pmu.EnhancedDestructive()})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)
	out := space.AllocWords(1)

	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeDestructive, table)
	ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.EmitInit()
	e.EmitMeasureStart(isa.R4, isa.R5, ctr)
	b.Compute(777)
	e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
	b.MovImm(isa.R1, int64(out))
	b.Store(isa.R1, 0, isa.R6)
	b.Halt()
	e.EmitFinish()

	proc := m.Kern.NewProcess(b.MustBuild(), space)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})
	got := space.Read64(out)
	// Destructive end-read returns events since the draining start
	// read: 777 + the movimm(0) + its own retirement.
	if got < 777 || got > 782 {
		t.Errorf("destructive measure %d, want ~779", got)
	}
}

func TestProcessTotalErrors(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	b := isa.NewBuilder()
	b.Compute(10)
	b.Halt()
	proc := m.Kern.NewProcess(b.MustBuild(), nil)
	m.Kern.Spawn(proc, "w", 0, 1)
	m.MustRun(machine.RunLimits{})
	if _, err := limit.ProcessTotal(proc, m.Kern.Threads(), 0); err == nil {
		t.Error("ProcessTotal with no counters must error")
	}
}

func TestProcessTotalSkipsOtherProcesses(t *testing.T) {
	m := machine.New(machine.Config{NumCores: 1})
	space := mem.NewSpace()
	table := limit.AllocTable(space, 1)
	b := isa.NewBuilder()
	e := limit.NewEmitter(b, limit.ModeStock, table)
	e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.EmitInit()
	b.Compute(1_000)
	b.Halt()
	e.EmitFinish()
	prog := b.MustBuild()

	p1 := m.Kern.NewProcess(prog, space)
	m.Kern.Spawn(p1, "a", 0, 1)
	// Second process: unrelated, no counters.
	b2 := isa.NewBuilder()
	b2.Compute(500)
	b2.Halt()
	p2 := m.Kern.NewProcess(b2.MustBuild(), nil)
	m.Kern.Spawn(p2, "b", 0, 2)
	m.MustRun(machine.RunLimits{})

	total, err := limit.ProcessTotal(p1, m.Kern.Threads(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if total < 1_000 || total > 1_100 {
		t.Errorf("process total %d, want ~1030 (p2 must not contribute)", total)
	}
}
