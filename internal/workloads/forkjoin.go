package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/mem"
	"limitsim/internal/profile"
	"limitsim/internal/rec"
	"limitsim/internal/tls"
	"limitsim/internal/usync"
)

// SymBarrier marks barrier-wait code for sampling attribution.
const SymBarrier = "sync.barrier"

// ForkJoinConfig parameterizes the iterative parallel-solver model: a
// parent thread spawns workers at runtime (SysSpawn), each iteration
// does an unbalanced compute phase, a reduction under a shared lock,
// and a barrier; the parent joins everyone at the end. The model
// exercises the synchronization shapes the lock-centric case studies
// don't: barrier waits under load imbalance and kernel-mediated thread
// lifecycles.
type ForkJoinConfig struct {
	Name           string
	Workers        int // spawned by the parent at runtime
	Iterations     int
	PhaseInstrs    int64 // mean compute per iteration
	ImbalancePct   uint8 // probability of a 2x-long phase
	ReduceCSInstrs int64
	GridLines      int64 // cache lines walked per phase
	Spins          int
}

// DefaultForkJoin returns the example configuration.
func DefaultForkJoin() ForkJoinConfig {
	return ForkJoinConfig{
		Name:           "forkjoin",
		Workers:        6,
		Iterations:     40,
		PhaseInstrs:    3_000,
		ImbalancePct:   64, // 25%
		ReduceCSInstrs: 90,
		GridLines:      16,
		Spins:          50,
	}
}

// BuildForkJoin assembles the solver. The parent occupies slot 0;
// workers get slots 1..Workers. The worker body's BodyMeta carries
// both the reduction-lock records (LockRec) and per-thread barrier
// wait records (BarrierRec, stride 1).
func BuildForkJoin(cfg ForkJoinConfig, ins Instrumentation) *App {
	space := mem.NewSpace()
	b := isa.NewBuilder()
	layout := &tls.Layout{}
	r := newReader(b, layout, space, ins)

	lockRec := rec.At(layout.Reserve(rec.SizeWords(cfg.Iterations, 2)), cfg.Iterations, 2)
	barRec := rec.At(layout.Reserve(rec.SizeWords(cfg.Iterations, 1)), cfg.Iterations, 1)
	startRef := layout.Reserve(1)
	totalRef := layout.Reserve(1)
	startRingRef := layout.Reserve(1)
	totalRingRef := layout.Reserve(1)

	reduceLock := usync.NewMutex(space, cfg.Spins)
	bar := usync.NewBarrier(space, cfg.Workers)
	grid := space.Alloc(uint64(cfg.Workers+1) * uint64(cfg.GridLines+8) * 64)
	sum := space.AllocWords(1)
	tidBuf := space.AllocWords(uint64(cfg.Workers))
	layout.Alloc(space, 1+cfg.Workers)

	// ---- parent: spawn workers, join them ----
	b.Label("parent")
	layout.EmitProlog(b)
	b.MovImm(isa.R10, int64(tidBuf))
	b.MovImm(isa.R8, 0)
	b.Label("spawnloop")
	b.MovLabel(isa.R0, "worker")
	b.AddImm(isa.R1, isa.R8, 1) // worker slot = index+1
	b.AddImm(isa.R2, isa.R8, 400)
	b.Syscall(kernel.SysSpawn)
	b.MovImm(isa.R9, 8)
	b.Mul(isa.R9, isa.R8, isa.R9)
	b.Add(isa.R9, isa.R9, isa.R10)
	b.Store(isa.R9, 0, isa.R0)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, int64(cfg.Workers))
	b.Br(isa.CondLT, isa.R8, isa.R9, "spawnloop")
	b.MovImm(isa.R8, 0)
	b.Label("joinloop")
	b.MovImm(isa.R9, 8)
	b.Mul(isa.R9, isa.R8, isa.R9)
	b.Add(isa.R9, isa.R9, isa.R10)
	b.Load(isa.R0, isa.R9, 0)
	b.Syscall(kernel.SysJoin)
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, int64(cfg.Workers))
	b.Br(isa.CondLT, isa.R8, isa.R9, "joinloop")
	b.Halt()

	// ---- worker: iterate compute/reduce/barrier ----
	b.Label("worker")
	layout.EmitProlog(b)
	r.prolog(b)
	emitTotalsStart(b, r, startRef, startRingRef)

	b.MovImm(regTxn, 0)
	b.Label("iter")
	r.enterRegion("iter", profile.KindPhase)
	// Unbalanced compute phase over this worker's grid slab.
	r.enterRegion("compute", profile.KindPhase)
	long := uniqLabel("fjlong")
	phaseEnd := uniqLabel("fjend")
	b.BrRand(cfg.ImbalancePct, long)
	emitComputeChunked(b, cfg.PhaseInstrs, 300)
	b.Jmp(phaseEnd)
	b.Label(long)
	emitComputeChunked(b, cfg.PhaseInstrs*2, 300)
	b.Label(phaseEnd)
	b.MovImm(isa.R10, (cfg.GridLines+8)*64)
	b.Mul(isa.R10, tls.SlotReg, isa.R10)
	b.AddImm(isa.R10, isa.R10, int64(grid))
	emitWalk(b, isa.R10, isa.R12, regBnd, cfg.GridLines)
	r.exitRegion()

	// Reduction under the shared lock.
	emitInstrumentedCS(b, r, "reduce", reduceLock.Ref(), cfg.Spins, lockRec, func() {
		b.MovImm(isa.R10, int64(sum))
		b.Load(isa.R12, isa.R10, 0)
		b.AddImm(isa.R12, isa.R12, 1)
		b.Store(isa.R10, 0, isa.R12)
		emitComputeChunked(b, cfg.ReduceCSInstrs, 150)
	})

	// Barrier, with the wait measured (as a wait-kind region when
	// profiling, as a per-episode record otherwise).
	b.BeginSymbol(SymBarrier)
	switch {
	case r.prof != nil:
		r.enterRegion("barrier", profile.KindLock)
		bar.EmitWait(b)
		r.exitRegion()
	case r.ins.Active():
		r.read(b, regT0)
		bar.EmitWait(b)
		r.read(b, regT2)
		b.Sub(regT2, regT2, regT0)
		barRec.EmitAppend(b, []isa.Reg{regT2}, isa.R0, isa.R1, isa.R2)
	default:
		bar.EmitWait(b)
	}
	b.EndSymbol()

	r.exitRegion() // iter
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.Iterations))
	b.Br(isa.CondLT, regTxn, regBnd, "iter")

	emitTotalsEnd(b, r, startRef, totalRef, startRingRef, totalRingRef)
	b.Halt()
	r.epilog(b)

	name := cfg.Name
	if name == "" {
		name = "forkjoin"
	}
	app := &App{
		Name:   name,
		Prog:   b.MustBuild(),
		Space:  space,
		Layout: layout,
		Instr:  ins,
		Bodies: []BodyMeta{
			{Label: "parent"},
			{
				Label:         "worker",
				LockRec:       lockRec,
				BarrierRec:    barRec,
				TotalCycles:   totalRef,
				AllRingCycles: totalRingRef,
				HasRing:       ins.hasRing(),
				Profiler:      r.prof,
			},
		},
	}
	// Only the parent is spawned by the host; workers come from
	// SysSpawn. Worker plans are still listed (slots 1..W, body 1) so
	// host-side analysis can locate their TLS blocks.
	app.Plans = append(app.Plans, ThreadPlan{Name: name + "-parent", Entry: "parent", Slot: 0, Body: 0, Seed: 4900})
	for w := 1; w <= cfg.Workers; w++ {
		app.Plans = append(app.Plans, ThreadPlan{
			Name:    fmt.Sprintf("%s-w%d", name, w),
			Entry:   "worker",
			Slot:    w,
			Body:    1,
			Seed:    uint64(400 + w - 1),
			Spawned: true,
		})
	}
	return app
}
