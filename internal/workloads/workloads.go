// Package workloads builds the synthetic application models the
// reproduction studies in place of the paper's MySQL, Apache and
// Firefox binaries, plus the microbenchmarks behind the overhead and
// precision experiments. Each model is generated ISA code: worker
// threads share one (or two) program bodies, address their per-thread
// state through a tls.Layout, synchronize through the usync futex
// lock library, and are instrumented at lock acquire/release sites
// with a configurable counter access method — exactly the structure
// the paper instruments in the real applications.
package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/papi"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
	"limitsim/internal/probe"
	"limitsim/internal/rec"
	"limitsim/internal/ref"
	"limitsim/internal/sampling"
	"limitsim/internal/tls"
	"limitsim/internal/usync"
)

// Symbol names used for sampling attribution of synchronization code.
const (
	SymAcquire = "sync.acquire"
	SymCS      = "sync.cs"
	SymRelease = "sync.release"
)

// Instrumentation selects how lock sites and thread totals are
// measured.
type Instrumentation struct {
	// Kind is the access method.
	Kind probe.Kind
	// Mode is the LiMiT read-sequence shape (limit only).
	Mode limit.Mode
	// SamplePeriod is the sampling period in events (sample only).
	SamplePeriod uint64
	// CountKernelRing makes the measurement counter count kernel-ring
	// cycles too, so a method's own kernel time lands inside measured
	// windows (the self-perturbation experiment).
	CountKernelRing bool
	// MeasureRings additionally opens a user+kernel cycles counter and
	// records per-thread totals for both, enabling the kernel/user
	// decomposition (limit only; ignored elsewhere).
	MeasureRings bool
	// NoFixup disables LiMiT fixup-region registration (ablation).
	NoFixup bool
	// Bottleneck switches lock instrumentation to multi-event
	// bottleneck identification (limit only): four counters — cycles,
	// L1D misses, LLC misses, branch misses — are read at critical-
	// section entry and exit and accumulated per thread, yielding
	// inside-CS vs overall microarchitectural rates. This is the
	// paper's title use case; it is only practical because LiMiT reads
	// cost tens of nanoseconds. Per-operation (acq, cs) records are
	// not collected in this mode.
	Bottleneck bool
}

// LimitInstr is the default instrumentation for the case studies.
func LimitInstr() Instrumentation {
	return Instrumentation{Kind: probe.KindLimit, Mode: limit.ModeStock, MeasureRings: true}
}

// BottleneckInstr is the multi-event instrumentation for the
// bottleneck-identification study.
func BottleneckInstr() Instrumentation {
	return Instrumentation{Kind: probe.KindLimit, Mode: limit.ModeStock, Bottleneck: true}
}

// BottleneckEvents are the four events the bottleneck study counts, in
// accumulator order.
var BottleneckEvents = [4]pmu.Event{pmu.EvCycles, pmu.EvL1DMiss, pmu.EvLLCMiss, pmu.EvBranchMiss}

// BottleneckMeta locates a body's bottleneck accumulators: four words
// each (BottleneckEvents order).
type BottleneckMeta struct {
	Valid bool
	// InCS accumulates event deltas measured between critical-section
	// entry and exit.
	InCS ref.Ref
	// Totals holds the thread's whole-body event totals.
	Totals ref.Ref
}

// hasRing reports whether per-thread user+kernel totals get recorded.
func (in Instrumentation) hasRing() bool {
	return in.MeasureRings && in.Kind == probe.KindLimit
}

// Active reports whether the kind performs explicit reads (as opposed
// to passive sampling or no instrumentation).
func (in Instrumentation) Active() bool {
	switch in.Kind {
	case probe.KindLimit, probe.KindPerf, probe.KindPAPI, probe.KindRdtsc:
		return true
	}
	return false
}

// ThreadPlan describes one thread of the app. Host-spawned threads are
// created by Launch; Spawned plans describe threads the program itself
// creates at runtime via SysSpawn (listed so host-side analysis can
// locate their TLS blocks).
type ThreadPlan struct {
	Name    string
	Entry   string // body entry label
	Slot    int    // TLS slot index
	Body    int    // index into App.Bodies
	Seed    uint64
	Spawned bool // created by the program via SysSpawn, not by Launch
}

// BodyMeta describes one program body's instrumentation artifacts for
// host-side extraction.
type BodyMeta struct {
	Label string
	// LockRec holds (acquire-cycles, cs-cycles) records per lock
	// operation; zero-capacity when the body has no lock sites.
	LockRec rec.Buffer
	// BarrierRec holds per-episode barrier wait cycles (stride 1);
	// zero-capacity when the body has no barriers.
	BarrierRec rec.Buffer
	// TotalCycles is the per-thread measured total (user ring, or
	// user+kernel when CountKernelRing).
	TotalCycles ref.Ref
	// AllRingCycles is the per-thread user+kernel total (only when
	// MeasureRings with the limit kind).
	AllRingCycles ref.Ref
	HasRing       bool
	// Bottleneck locates the multi-event accumulators (Bottleneck
	// instrumentation only).
	Bottleneck BottleneckMeta
}

// App is a built workload ready to launch.
type App struct {
	Name   string
	Prog   *isa.Program
	Space  *mem.Space
	Layout *tls.Layout
	Plans  []ThreadPlan
	Bodies []BodyMeta
	Instr  Instrumentation
}

// Launch creates the app's process and threads on m. Threads receive
// their TLS slot index in tls.SlotReg.
func (a *App) Launch(m *machine.Machine) []*kernel.Thread {
	proc := m.Kern.NewProcess(a.Prog, a.Space)
	var threads []*kernel.Thread
	for _, p := range a.Plans {
		if p.Spawned {
			continue // the program creates this thread via SysSpawn
		}
		t := m.Kern.Spawn(proc, p.Name, a.Prog.MustEntry(p.Entry), p.Seed)
		t.SetReg(tls.SlotReg, uint64(p.Slot))
		threads = append(threads, t)
	}
	return threads
}

// Run launches the app on a fresh machine and executes to completion.
func (a *App) Run(mcfg machine.Config, limits machine.RunLimits) (*machine.Machine, machine.RunResult, []*kernel.Thread) {
	m := machine.New(mcfg)
	threads := a.Launch(m)
	res := m.Run(limits)
	return m, res, threads
}

// ThreadBase returns the TLS base for a plan's thread (for reading
// back its records).
func (a *App) ThreadBase(plan ThreadPlan) uint64 {
	return a.Layout.ThreadBase(plan.Slot)
}

// reader emits measurement reads for one program body under the
// configured access method.
type reader struct {
	ins    Instrumentation
	le     *limit.Emitter // limit kind
	ctrU   int
	ctrUK  int
	p      probe.Probe // other active kinds
	fdRef  ref.Ref     // perf
	es     *papi.EventSet
	sample bool

	// Bottleneck mode state: counter indices and TLS fields.
	bctrs    [4]int
	bScratch ref.Ref // 4 words: entry values held across the CS body
	bInCS    ref.Ref // 4 words: inside-CS accumulators
	bStart   ref.Ref // 4 words: body-start values
	bTotals  ref.Ref // 4 words: whole-body totals
}

// bottleneck reports whether multi-event CS instrumentation is active.
func (r *reader) bottleneck() bool {
	return r.ins.Bottleneck && r.ins.Kind == probe.KindLimit
}

// bottleneckMeta returns the body's accumulator locations.
func (r *reader) bottleneckMeta() BottleneckMeta {
	if !r.bottleneck() {
		return BottleneckMeta{}
	}
	return BottleneckMeta{Valid: true, InCS: r.bInCS, Totals: r.bTotals}
}

// newReader reserves TLS state and constructs emitters. Must be
// called while the layout is still open.
func newReader(b *isa.Builder, layout *tls.Layout, ins Instrumentation) *reader {
	r := &reader{ins: ins}
	spec := limit.UserCounter(pmu.EvCycles)
	if ins.CountKernelRing {
		spec = limit.AllRingsCounter(pmu.EvCycles)
	}
	switch ins.Kind {
	case probe.KindLimit:
		if ins.Bottleneck {
			// Four counters fill the PMU; ring measurement is dropped.
			r.le = limit.NewEmitter(b, ins.Mode, layout.Reserve(4))
			if ins.NoFixup {
				r.le.DisableFixupRegistration()
			}
			for i, ev := range BottleneckEvents {
				r.bctrs[i] = r.le.AddCounter(limit.UserCounter(ev))
			}
			r.ctrU = r.bctrs[0] // cycles: keeps totals/CS timing working
			r.bScratch = layout.Reserve(4)
			r.bInCS = layout.Reserve(4)
			r.bStart = layout.Reserve(4)
			r.bTotals = layout.Reserve(4)
			break
		}
		n := 1
		if ins.MeasureRings {
			n = 2
		}
		r.le = limit.NewEmitter(b, ins.Mode, layout.Reserve(n))
		if ins.NoFixup {
			r.le.DisableFixupRegistration()
		}
		r.ctrU = r.le.AddCounter(spec)
		if ins.MeasureRings {
			r.ctrUK = r.le.AddCounter(limit.AllRingsCounter(pmu.EvCycles))
		}
	case probe.KindPerf:
		r.fdRef = layout.Reserve(1)
	case probe.KindPAPI:
		pspec := perfevent.UserSpec(pmu.EvCycles)
		if ins.CountKernelRing {
			pspec = perfevent.AllRingsSpec(pmu.EvCycles)
		}
		r.es = papi.NewEventSetSpecs(layout.Reserve(papi.StateWords(1)), pspec)
	case probe.KindSample:
		r.sample = true
	}
	return r
}

// prolog emits per-thread setup at body entry (after the TLS prolog).
func (r *reader) prolog(b *isa.Builder) {
	switch r.ins.Kind {
	case probe.KindLimit:
		r.le.EmitInit()
	case probe.KindPerf:
		spec := perfevent.UserSpec(pmu.EvCycles)
		if r.ins.CountKernelRing {
			spec = perfevent.AllRingsSpec(pmu.EvCycles)
		}
		perfevent.EmitOpen(b, spec, isa.R2)
		r.fdRef.EmitStore(b, isa.R2, isa.R3)
	case probe.KindPAPI:
		r.es.EmitStart(b)
	case probe.KindSample:
		period := r.ins.SamplePeriod
		if period == 0 {
			period = 100_000
		}
		sampling.EmitStart(b, pmu.EvCycles, period)
	}
}

// read emits a cycles read into dst. Clobbers R0..R3. No-op (dst=0)
// for passive kinds.
func (r *reader) read(b *isa.Builder, dst isa.Reg) {
	switch r.ins.Kind {
	case probe.KindLimit:
		r.le.EmitRead(dst, isa.R3, r.ctrU)
	case probe.KindPerf:
		r.fdRef.EmitLoad(b, isa.R0)
		perfevent.EmitRead(b, isa.R0, dst)
	case probe.KindPAPI:
		r.es.EmitReadInto(b, 0, dst)
	case probe.KindRdtsc:
		b.RdCycle(dst)
	default:
		b.MovImm(dst, 0)
	}
}

// readRing emits a user+kernel cycles read (limit with MeasureRings
// only; dst=0 otherwise).
func (r *reader) readRing(b *isa.Builder, dst isa.Reg) {
	if r.ins.Kind == probe.KindLimit && r.ins.MeasureRings {
		r.le.EmitRead(dst, isa.R3, r.ctrUK)
		return
	}
	b.MovImm(dst, 0)
}

// epilog emits trailing blocks (the LiMiT setup block).
func (r *reader) epilog(b *isa.Builder) {
	if r.ins.Kind == probe.KindLimit {
		r.le.EmitFinish()
	}
}

// Register conventions for instrumented bodies: the wrapper owns
// R4..R6; bodies may use R7..R13 (R11/R13 carry the lock index and
// lock address across the wrapper when the caller sets them up);
// R14/R15 belong to TLS.
const (
	regT0  = isa.R4 // start value, then acquire delta
	regT1  = isa.R5 // post-acquire value (live across the CS body)
	regT2  = isa.R6 // end value, then CS delta
	regOpI = isa.R7 // conventional inner loop counter
	regTxn = isa.R8 // conventional outer loop counter
	regBnd = isa.R9 // conventional bound/compare scratch
)

// emitInstrumentedCS emits a measured lock/critical-section/unlock
// around body:
//
//	t0 = read; lock; t1 = read        (symbol sync.acquire)
//	body; t2 = read                   (symbol sync.cs)
//	unlock                            (symbol sync.release)
//	append (t1-t0, t2-t1) to buf
//
// The body must preserve R5 (t1) and must not touch R4/R6; reads and
// lock code clobber R0..R3. With passive instrumentation the reads and
// the record append are omitted (zero overhead), but the symbols remain
// for sampling attribution.
func emitInstrumentedCS(b *isa.Builder, r *reader, word ref.Ref, spins int, buf rec.Buffer, body func()) {
	if r.bottleneck() {
		emitBottleneckCS(b, r, word, spins, body)
		return
	}
	active := r.ins.Active()
	b.BeginSymbol(SymAcquire)
	if active {
		r.read(b, regT0)
	}
	usync.EmitLock(b, word, spins)
	if active {
		r.read(b, regT1)
		b.Sub(regT0, regT1, regT0) // acquire delta
	}
	b.EndSymbol()

	b.BeginSymbol(SymCS)
	body()
	if active {
		r.read(b, regT2)
		b.Sub(regT2, regT2, regT1) // cs delta
	}
	b.EndSymbol()

	b.BeginSymbol(SymRelease)
	usync.EmitUnlock(b, word)
	b.EndSymbol()

	if active {
		buf.EmitAppend(b, []isa.Reg{regT0, regT2}, isa.R0, isa.R1, isa.R2)
	}
}

// emitBottleneckCS emits the multi-event variant of the instrumented
// critical section: all four bottleneck counters are read at CS entry
// (after the lock is held) and at CS exit, and the deltas accumulate
// into the thread's inside-CS accumulators. Entry values survive the
// body in TLS scratch memory rather than registers, so the body's
// register constraints are the same as the plain wrapper's.
func emitBottleneckCS(b *isa.Builder, r *reader, word ref.Ref, spins int, body func()) {
	b.BeginSymbol(SymAcquire)
	usync.EmitLock(b, word, spins)
	for i := range BottleneckEvents {
		r.le.EmitRead(regT0, isa.R3, r.bctrs[i])
		r.bScratch.Word(i).EmitStore(b, regT0, isa.R1)
	}
	b.EndSymbol()

	b.BeginSymbol(SymCS)
	body()
	for i := range BottleneckEvents {
		r.le.EmitRead(regT0, isa.R3, r.bctrs[i])
		r.bScratch.Word(i).EmitLoad(b, regT1)
		b.Sub(regT0, regT0, regT1)
		r.bInCS.Word(i).EmitLoad(b, regT1)
		b.Add(regT0, regT0, regT1)
		r.bInCS.Word(i).EmitStore(b, regT0, isa.R1)
	}
	b.EndSymbol()

	b.BeginSymbol(SymRelease)
	usync.EmitUnlock(b, word)
	b.EndSymbol()
}

// emitTotalsStart records the body's starting cycle values into the
// TLS words behind startRef/startRingRef.
func emitTotalsStart(b *isa.Builder, r *reader, startRef, startRingRef ref.Ref) {
	if !r.ins.Active() {
		return
	}
	r.read(b, regT0)
	startRef.EmitStore(b, regT0, isa.R1)
	if r.ins.MeasureRings && r.ins.Kind == probe.KindLimit {
		r.readRing(b, regT0)
		startRingRef.EmitStore(b, regT0, isa.R1)
	}
	if r.bottleneck() {
		for i := range BottleneckEvents {
			r.le.EmitRead(regT0, isa.R3, r.bctrs[i])
			r.bStart.Word(i).EmitStore(b, regT0, isa.R1)
		}
	}
}

// emitTotalsEnd computes the body's total cycles (and ring totals) and
// stores them into totalRef/totalRingRef.
func emitTotalsEnd(b *isa.Builder, r *reader, startRef, totalRef, startRingRef, totalRingRef ref.Ref) {
	if !r.ins.Active() {
		return
	}
	r.read(b, regT2)
	startRef.EmitLoad(b, regT1)
	b.Sub(regT2, regT2, regT1)
	totalRef.EmitStore(b, regT2, isa.R1)
	if r.ins.MeasureRings && r.ins.Kind == probe.KindLimit {
		r.readRing(b, regT2)
		startRingRef.EmitLoad(b, regT1)
		b.Sub(regT2, regT2, regT1)
		totalRingRef.EmitStore(b, regT2, isa.R1)
	}
	if r.bottleneck() {
		for i := range BottleneckEvents {
			r.le.EmitRead(regT2, isa.R3, r.bctrs[i])
			r.bStart.Word(i).EmitLoad(b, regT1)
			b.Sub(regT2, regT2, regT1)
			r.bTotals.Word(i).EmitStore(b, regT2, isa.R1)
		}
	}
}

// emitComputeChunked emits n instructions of compute work in blocks of
// at most chunk, so preemption points occur at realistic intervals.
func emitComputeChunked(b *isa.Builder, n, chunk int64) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 200
	}
	for n > chunk {
		b.Compute(chunk)
		n -= chunk
	}
	b.Compute(n)
}

// emitComputeJitter emits a random amount of extra compute: between 0
// and chunks-1 blocks (chunks must be a power of two) of chunkInstrs
// each, drawn from the thread's RNG. Workload bodies use it so that
// region lengths form distributions rather than spikes. Clobbers rA
// and rB.
func emitComputeJitter(b *isa.Builder, rA, rB isa.Reg, chunks, chunkInstrs int64) {
	if chunks <= 1 {
		return
	}
	if chunks&(chunks-1) != 0 {
		panic("workloads: jitter chunks must be a power of two")
	}
	loop := uniqLabel("jit")
	done := uniqLabel("jitdone")
	b.Rand(rA)
	b.MovImm(rB, chunks-1)
	b.And(rA, rA, rB)
	b.MovImm(rB, 0)
	b.Label(loop)
	b.Br(isa.CondGE, rB, rA, done)
	b.Compute(chunkInstrs)
	b.AddImm(rB, rB, 1)
	b.Jmp(loop)
	b.Label(done)
}

// emitWalk emits a pointer walk touching `lines` cache lines starting
// at the address in ptr (stride 64B), generating realistic data-cache
// traffic. Clobbers ptr, cnt and bnd.
func emitWalk(b *isa.Builder, ptr, cnt, bnd isa.Reg, lines int64) {
	if lines <= 0 {
		return
	}
	loop := uniqLabel("walk")
	b.MovImm(cnt, 0)
	b.Label(loop)
	b.Load(bnd, ptr, 0)
	b.AddImm(ptr, ptr, 64)
	b.AddImm(cnt, cnt, 1)
	b.MovImm(bnd, lines)
	b.Br(isa.CondLT, cnt, bnd, loop)
}

var wlLabelSeq int

func uniqLabel(prefix string) string {
	wlLabelSeq++
	return fmt.Sprintf("wl.%s.%d", prefix, wlLabelSeq)
}
