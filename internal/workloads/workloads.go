// Package workloads builds the synthetic application models the
// reproduction studies in place of the paper's MySQL, Apache and
// Firefox binaries, plus the microbenchmarks behind the overhead and
// precision experiments. Each model is generated ISA code: worker
// threads share one (or two) program bodies, address their per-thread
// state through a tls.Layout, synchronize through the usync futex
// lock library, and are instrumented at lock acquire/release sites
// with a configurable counter access method — exactly the structure
// the paper instruments in the real applications.
package workloads

import (
	"fmt"
	"sync/atomic"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/papi"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
	"limitsim/internal/probe"
	"limitsim/internal/profile"
	"limitsim/internal/rec"
	"limitsim/internal/ref"
	"limitsim/internal/sampling"
	"limitsim/internal/tls"
	"limitsim/internal/usync"
)

// Symbol names used for sampling attribution of synchronization code.
const (
	SymAcquire = "sync.acquire"
	SymCS      = "sync.cs"
	SymRelease = "sync.release"
)

// Instrumentation selects how lock sites and thread totals are
// measured.
type Instrumentation struct {
	// Kind is the access method.
	Kind probe.Kind
	// Mode is the LiMiT read-sequence shape (limit only).
	Mode limit.Mode
	// SamplePeriod is the sampling period in events (sample only).
	SamplePeriod uint64
	// CountKernelRing makes the measurement counter count kernel-ring
	// cycles too, so a method's own kernel time lands inside measured
	// windows (the self-perturbation experiment).
	CountKernelRing bool
	// MeasureRings additionally opens a user+kernel cycles counter and
	// records per-thread totals for both, enabling the kernel/user
	// decomposition (limit only; ignored elsewhere).
	MeasureRings bool
	// NoFixup disables LiMiT fixup-region registration (ablation).
	NoFixup bool
	// Profile switches the body to region-attribution profiling (limit
	// only): every annotated region boundary reads the spec's event
	// bundle through a profile.Instrumenter and streams the deltas into
	// bounded per-region accumulators. This is the paper's title use
	// case — it is only practical because LiMiT reads cost tens of
	// nanoseconds. Per-operation (acq, cs) records are not collected in
	// this mode.
	Profile *profile.Spec
	// MuxGroups opens one multiplexed event group per entry at body
	// start, alongside whatever explicit instrumentation Kind selects.
	// The groups rotate through leftover counter slots under the
	// kernel's multiplexing scheduler and feed the per-rotation frame
	// stream the derived-metric engine consumes; they never perturb the
	// body itself (no reads are emitted — estimates are collected
	// host-side from frames).
	MuxGroups [][]perfevent.Spec
}

// LimitInstr is the default instrumentation for the case studies.
func LimitInstr() Instrumentation {
	return Instrumentation{Kind: probe.KindLimit, Mode: limit.ModeStock, MeasureRings: true}
}

// defaultMuxEvents is the flat event list DefaultMuxGroups chunks into
// groups: the events the built-in derived metrics (metrics.Builtin)
// read, ordered so narrow widths still pair each rate's numerator with
// its denominator inside one group (atomically co-scheduled).
var defaultMuxEvents = []perfevent.Spec{
	perfevent.UserSpec(pmu.EvCycles),
	perfevent.UserSpec(pmu.EvInstructions),
	perfevent.UserSpec(pmu.EvBranches),
	perfevent.UserSpec(pmu.EvBranchMiss),
	perfevent.AllRingsSpec(pmu.EvCycles),
	perfevent.KernelSpec(pmu.EvCycles),
	perfevent.UserSpec(pmu.EvLoads),
	perfevent.UserSpec(pmu.EvStores),
	perfevent.UserSpec(pmu.EvL1DMiss),
	perfevent.UserSpec(pmu.EvL2Miss),
	perfevent.UserSpec(pmu.EvLLCMiss),
	perfevent.UserSpec(pmu.EvDTLBMiss),
	perfevent.UserSpec(pmu.EvDTLBWalk),
	perfevent.UserSpec(pmu.EvAtomics),
	perfevent.AllRingsSpec(pmu.EvSyscalls),
	perfevent.AllRingsSpec(pmu.EvCtxSwitches),
}

// DefaultMuxGroups chunks the default metric event set into groups of
// the given width (events per group). Narrower groups fit leftover
// counters more easily but need more rotations to cover the set.
func DefaultMuxGroups(width int) [][]perfevent.Spec {
	if width <= 0 {
		width = 4
	}
	var groups [][]perfevent.Spec
	for i := 0; i < len(defaultMuxEvents); i += width {
		end := i + width
		if end > len(defaultMuxEvents) {
			end = len(defaultMuxEvents)
		}
		groups = append(groups, defaultMuxEvents[i:end])
	}
	return groups
}

// ProfileInstr is region-attribution profiling instrumentation with
// the given bundle spec (ring measurement follows the bundle: present
// exactly when it carries all-rings cycles).
func ProfileInstr(spec profile.Spec) Instrumentation {
	spec = spec.Normalized()
	in := Instrumentation{Kind: probe.KindLimit, Mode: limit.ModeStock, Profile: &spec}
	_, in.MeasureRings = spec.AllRingsCyclesIndex()
	return in
}

// hasRing reports whether per-thread user+kernel totals get recorded.
func (in Instrumentation) hasRing() bool {
	return in.MeasureRings && in.Kind == probe.KindLimit
}

// Profiling reports whether bodies build with region-attribution
// profiling: a profile spec on an access method cheap enough to carry
// it (probe.Kind.Profilable).
func (in Instrumentation) Profiling() bool {
	return in.Profile != nil && in.Kind.Profilable()
}

// Active reports whether the kind performs explicit reads (as opposed
// to passive sampling or no instrumentation).
func (in Instrumentation) Active() bool {
	switch in.Kind {
	case probe.KindLimit, probe.KindPerf, probe.KindPAPI, probe.KindRdtsc:
		return true
	}
	return false
}

// ThreadPlan describes one thread of the app. Host-spawned threads are
// created by Launch; Spawned plans describe threads the program itself
// creates at runtime via SysSpawn (listed so host-side analysis can
// locate their TLS blocks).
type ThreadPlan struct {
	Name    string
	Entry   string // body entry label
	Slot    int    // TLS slot index
	Body    int    // index into App.Bodies
	Seed    uint64
	Spawned bool // created by the program via SysSpawn, not by Launch
}

// BodyMeta describes one program body's instrumentation artifacts for
// host-side extraction.
type BodyMeta struct {
	Label string
	// LockRec holds (acquire-cycles, cs-cycles) records per lock
	// operation; zero-capacity when the body has no lock sites.
	LockRec rec.Buffer
	// BarrierRec holds per-episode barrier wait cycles (stride 1);
	// zero-capacity when the body has no barriers.
	BarrierRec rec.Buffer
	// TotalCycles is the per-thread measured total (user ring, or
	// user+kernel when CountKernelRing).
	TotalCycles ref.Ref
	// AllRingCycles is the per-thread user+kernel total (only when
	// MeasureRings with the limit kind).
	AllRingCycles ref.Ref
	HasRing       bool
	// Profiler owns the body's region accumulators (Profile
	// instrumentation only).
	Profiler *profile.Instrumenter
}

// App is a built workload ready to launch.
type App struct {
	Name   string
	Prog   *isa.Program
	Space  *mem.Space
	Layout *tls.Layout
	Plans  []ThreadPlan
	Bodies []BodyMeta
	Instr  Instrumentation
}

// Launch creates the app's process and threads on m. Threads receive
// their TLS slot index in tls.SlotReg.
func (a *App) Launch(m *machine.Machine) []*kernel.Thread {
	proc := m.Kern.NewProcess(a.Prog, a.Space)
	var threads []*kernel.Thread
	for _, p := range a.Plans {
		if p.Spawned {
			continue // the program creates this thread via SysSpawn
		}
		t := m.Kern.Spawn(proc, p.Name, a.Prog.MustEntry(p.Entry), p.Seed)
		t.SetReg(tls.SlotReg, uint64(p.Slot))
		threads = append(threads, t)
	}
	return threads
}

// Run launches the app on a fresh machine and executes to completion.
func (a *App) Run(mcfg machine.Config, limits machine.RunLimits) (*machine.Machine, machine.RunResult, []*kernel.Thread) {
	m := machine.New(mcfg)
	threads := a.Launch(m)
	res := m.Run(limits)
	return m, res, threads
}

// ThreadBase returns the TLS base for a plan's thread (for reading
// back its records).
func (a *App) ThreadBase(plan ThreadPlan) uint64 {
	return a.Layout.ThreadBase(plan.Slot)
}

// reader emits measurement reads for one program body under the
// configured access method.
type reader struct {
	ins    Instrumentation
	le     *limit.Emitter // limit kind
	ctrU   int
	ctrUK  int
	p      probe.Probe // other active kinds
	fdRef  ref.Ref     // perf
	es     *papi.EventSet
	sample bool

	// prof is the region-attribution instrumenter (Profile mode only).
	prof *profile.Instrumenter

	// muxTables holds one (table address, event count) pair per
	// multiplexed group; the prolog opens them.
	muxTables []muxTable
}

type muxTable struct {
	addr uint64
	n    int
}

// enterRegion/exitRegion annotate a profiled region boundary; no-ops
// without Profile instrumentation, so bodies annotate unconditionally.
func (r *reader) enterRegion(name string, kind profile.RegionKind) {
	if r.prof != nil {
		r.prof.Enter(name, kind)
	}
}

func (r *reader) exitRegion() {
	if r.prof != nil {
		r.prof.Exit()
	}
}

// newReader reserves TLS state and constructs emitters. Must be
// called while the layout is still open. space backs the group tables
// for MuxGroups instrumentation (the tables are read-only at open, so
// every thread shares them).
func newReader(b *isa.Builder, layout *tls.Layout, space *mem.Space, ins Instrumentation) *reader {
	r := &reader{ins: ins}
	for _, specs := range ins.MuxGroups {
		r.muxTables = append(r.muxTables, muxTable{
			addr: perfevent.GroupTable(space, specs),
			n:    len(specs),
		})
	}
	spec := limit.UserCounter(pmu.EvCycles)
	if ins.CountKernelRing {
		spec = limit.AllRingsCounter(pmu.EvCycles)
	}
	switch ins.Kind {
	case probe.KindLimit:
		if ins.Profiling() {
			// The bundle's counters fill the PMU; the profiler's own
			// cycles (and all-rings cycles, when bundled) double as the
			// totals counters.
			pspec := ins.Profile.Normalized()
			r.le = limit.NewEmitter(b, ins.Mode, layout.Reserve(len(pspec.Events)))
			if ins.NoFixup {
				r.le.DisableFixupRegistration()
			}
			r.prof = profile.NewInstrumenter(b, layout, r.le, pspec)
			r.ctrU = r.prof.CounterIndex(0)
			if i, ok := pspec.AllRingsCyclesIndex(); ok {
				r.ctrUK = r.prof.CounterIndex(i)
				r.ins.MeasureRings = true
			} else {
				r.ins.MeasureRings = false
			}
			break
		}
		n := 1
		if ins.MeasureRings {
			n = 2
		}
		r.le = limit.NewEmitter(b, ins.Mode, layout.Reserve(n))
		if ins.NoFixup {
			r.le.DisableFixupRegistration()
		}
		r.ctrU = r.le.AddCounter(spec)
		if ins.MeasureRings {
			r.ctrUK = r.le.AddCounter(limit.AllRingsCounter(pmu.EvCycles))
		}
	case probe.KindPerf:
		r.fdRef = layout.Reserve(1)
	case probe.KindPAPI:
		pspec := perfevent.UserSpec(pmu.EvCycles)
		if ins.CountKernelRing {
			pspec = perfevent.AllRingsSpec(pmu.EvCycles)
		}
		r.es = papi.NewEventSetSpecs(layout.Reserve(papi.StateWords(1)), pspec)
	case probe.KindSample:
		r.sample = true
	}
	return r
}

// prolog emits per-thread setup at body entry (after the TLS prolog).
func (r *reader) prolog(b *isa.Builder) {
	for _, mt := range r.muxTables {
		perfevent.EmitGroupOpen(b, mt.addr, mt.n)
	}
	switch r.ins.Kind {
	case probe.KindLimit:
		r.le.EmitInit()
	case probe.KindPerf:
		spec := perfevent.UserSpec(pmu.EvCycles)
		if r.ins.CountKernelRing {
			spec = perfevent.AllRingsSpec(pmu.EvCycles)
		}
		perfevent.EmitOpen(b, spec, isa.R2)
		r.fdRef.EmitStore(b, isa.R2, isa.R3)
	case probe.KindPAPI:
		r.es.EmitStart(b)
	case probe.KindSample:
		period := r.ins.SamplePeriod
		if period == 0 {
			period = 100_000
		}
		sampling.EmitStart(b, pmu.EvCycles, period)
	}
}

// read emits a cycles read into dst. Clobbers R0..R3. No-op (dst=0)
// for passive kinds.
func (r *reader) read(b *isa.Builder, dst isa.Reg) {
	switch r.ins.Kind {
	case probe.KindLimit:
		r.le.EmitRead(dst, isa.R3, r.ctrU)
	case probe.KindPerf:
		r.fdRef.EmitLoad(b, isa.R0)
		perfevent.EmitRead(b, isa.R0, dst)
	case probe.KindPAPI:
		r.es.EmitReadInto(b, 0, dst)
	case probe.KindRdtsc:
		b.RdCycle(dst)
	default:
		b.MovImm(dst, 0)
	}
}

// readRing emits a user+kernel cycles read (limit with MeasureRings
// only; dst=0 otherwise).
func (r *reader) readRing(b *isa.Builder, dst isa.Reg) {
	if r.ins.Kind == probe.KindLimit && r.ins.MeasureRings {
		r.le.EmitRead(dst, isa.R3, r.ctrUK)
		return
	}
	b.MovImm(dst, 0)
}

// epilog emits trailing blocks (the LiMiT setup block).
func (r *reader) epilog(b *isa.Builder) {
	if r.ins.Kind == probe.KindLimit {
		r.le.EmitFinish()
	}
}

// Register conventions for instrumented bodies: the wrapper owns
// R4..R6; bodies may use R7..R13 (R11/R13 carry the lock index and
// lock address across the wrapper when the caller sets them up);
// R14/R15 belong to TLS.
const (
	regT0  = isa.R4 // start value, then acquire delta
	regT1  = isa.R5 // post-acquire value (live across the CS body)
	regT2  = isa.R6 // end value, then CS delta
	regOpI = isa.R7 // conventional inner loop counter
	regTxn = isa.R8 // conventional outer loop counter
	regBnd = isa.R9 // conventional bound/compare scratch
)

// emitInstrumentedCS emits a measured lock/critical-section/unlock
// around body:
//
//	t0 = read; lock; t1 = read        (symbol sync.acquire)
//	body; t2 = read                   (symbol sync.cs)
//	unlock                            (symbol sync.release)
//	append (t1-t0, t2-t1) to buf
//
// The body must preserve R5 (t1) and must not touch R4/R6; reads and
// lock code clobber R0..R3. With passive instrumentation the reads and
// the record append are omitted (zero overhead), but the symbols remain
// for sampling attribution.
//
// With Profile instrumentation the site name becomes two regions —
// "<site>.acquire" (lock kind) around the acquire and "<site>.cs" (cs
// kind) around the held section — and the bounded region accumulators
// replace the per-operation records.
func emitInstrumentedCS(b *isa.Builder, r *reader, site string, word ref.Ref, spins int, buf rec.Buffer, body func()) {
	if r.prof != nil {
		b.BeginSymbol(SymAcquire)
		r.prof.Enter(site+".acquire", profile.KindLock)
		usync.EmitLock(b, word, spins)
		r.prof.Exit()
		b.EndSymbol()

		b.BeginSymbol(SymCS)
		r.prof.Enter(site+".cs", profile.KindCS)
		body()
		r.prof.Exit()
		b.EndSymbol()

		b.BeginSymbol(SymRelease)
		usync.EmitUnlock(b, word)
		b.EndSymbol()
		return
	}
	active := r.ins.Active()
	b.BeginSymbol(SymAcquire)
	if active {
		r.read(b, regT0)
	}
	usync.EmitLock(b, word, spins)
	if active {
		r.read(b, regT1)
		b.Sub(regT0, regT1, regT0) // acquire delta
	}
	b.EndSymbol()

	b.BeginSymbol(SymCS)
	body()
	if active {
		r.read(b, regT2)
		b.Sub(regT2, regT2, regT1) // cs delta
	}
	b.EndSymbol()

	b.BeginSymbol(SymRelease)
	usync.EmitUnlock(b, word)
	b.EndSymbol()

	if active {
		buf.EmitAppend(b, []isa.Reg{regT0, regT2}, isa.R0, isa.R1, isa.R2)
	}
}

// emitTotalsStart records the body's starting cycle values into the
// TLS words behind startRef/startRingRef.
func emitTotalsStart(b *isa.Builder, r *reader, startRef, startRingRef ref.Ref) {
	if !r.ins.Active() {
		return
	}
	r.read(b, regT0)
	startRef.EmitStore(b, regT0, isa.R1)
	if r.ins.MeasureRings && r.ins.Kind == probe.KindLimit {
		r.readRing(b, regT0)
		startRingRef.EmitStore(b, regT0, isa.R1)
	}
}

// emitTotalsEnd computes the body's total cycles (and ring totals) and
// stores them into totalRef/totalRingRef.
func emitTotalsEnd(b *isa.Builder, r *reader, startRef, totalRef, startRingRef, totalRingRef ref.Ref) {
	if !r.ins.Active() {
		return
	}
	r.read(b, regT2)
	startRef.EmitLoad(b, regT1)
	b.Sub(regT2, regT2, regT1)
	totalRef.EmitStore(b, regT2, isa.R1)
	if r.ins.MeasureRings && r.ins.Kind == probe.KindLimit {
		r.readRing(b, regT2)
		startRingRef.EmitLoad(b, regT1)
		b.Sub(regT2, regT2, regT1)
		totalRingRef.EmitStore(b, regT2, isa.R1)
	}
}

// emitComputeChunked emits n instructions of compute work in blocks of
// at most chunk, so preemption points occur at realistic intervals.
func emitComputeChunked(b *isa.Builder, n, chunk int64) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 200
	}
	for n > chunk {
		b.Compute(chunk)
		n -= chunk
	}
	b.Compute(n)
}

// emitComputeJitter emits a random amount of extra compute: between 0
// and chunks-1 blocks (chunks must be a power of two) of chunkInstrs
// each, drawn from the thread's RNG. Workload bodies use it so that
// region lengths form distributions rather than spikes. Clobbers rA
// and rB.
func emitComputeJitter(b *isa.Builder, rA, rB isa.Reg, chunks, chunkInstrs int64) {
	if chunks <= 1 {
		return
	}
	if chunks&(chunks-1) != 0 {
		panic("workloads: jitter chunks must be a power of two")
	}
	loop := uniqLabel("jit")
	done := uniqLabel("jitdone")
	b.Rand(rA)
	b.MovImm(rB, chunks-1)
	b.And(rA, rA, rB)
	b.MovImm(rB, 0)
	b.Label(loop)
	b.Br(isa.CondGE, rB, rA, done)
	b.Compute(chunkInstrs)
	b.AddImm(rB, rB, 1)
	b.Jmp(loop)
	b.Label(done)
}

// emitWalk emits a pointer walk touching `lines` cache lines starting
// at the address in ptr (stride 64B), generating realistic data-cache
// traffic. Clobbers ptr, cnt and bnd.
func emitWalk(b *isa.Builder, ptr, cnt, bnd isa.Reg, lines int64) {
	if lines <= 0 {
		return
	}
	loop := uniqLabel("walk")
	b.MovImm(cnt, 0)
	b.Label(loop)
	b.Load(bnd, ptr, 0)
	b.AddImm(ptr, ptr, 64)
	b.AddImm(cnt, cnt, 1)
	b.MovImm(bnd, lines)
	b.Br(isa.CondLT, cnt, bnd, loop)
}

// CollectProfile reads every profiled thread's region accumulators
// back and merges them into one deterministic profile for the app. The
// app must have been built with ProfileInstr.
func CollectProfile(app *App) (*profile.Profile, error) {
	var out *profile.Profile
	for bi := range app.Bodies {
		ins := app.Bodies[bi].Profiler
		if ins == nil {
			continue
		}
		var bases []uint64
		for _, plan := range app.Plans {
			if plan.Body != bi {
				continue
			}
			bases = append(bases, app.ThreadBase(plan))
		}
		p := ins.Collect(app.Space, bases)
		if out == nil {
			out = p
		} else if err := out.Merge(p); err != nil {
			return nil, err
		}
	}
	if out == nil {
		return nil, fmt.Errorf("workloads: %s was not built with profile instrumentation", app.Name)
	}
	out.App = app.Name
	return out, nil
}

// wlLabelSeq is atomic: workloads are built concurrently by the
// runner's worker pool. Label numbering never reaches generated bytes.
var wlLabelSeq atomic.Int64

func uniqLabel(prefix string) string {
	return fmt.Sprintf("wl.%s.%d", prefix, wlLabelSeq.Add(1))
}
