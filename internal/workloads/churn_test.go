package workloads

import (
	"testing"

	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/tls"
)

// churnRun builds and runs one churn workload to completion.
func churnRun(t *testing.T, cfg ChurnConfig, kcfg kernel.Config) (*Churn, *machine.Machine) {
	t.Helper()
	w := BuildChurn(cfg)
	m := machine.New(machine.Config{NumCores: 2, Kernel: kcfg})
	proc := m.Kern.NewProcess(w.Prog, w.Space)
	for mt := 0; mt < len(w.Entries); mt++ {
		mgr := m.Kern.Spawn(proc, "churn-mgr", w.Entries[mt], 7+uint64(mt))
		mgr.SetReg(tls.SlotReg, uint64(w.ManagerSlot(mt)))
		mgr.Tenant = mt
	}
	res := m.Run(machine.RunLimits{MaxSteps: 20_000_000})
	if res.Err != nil || len(res.Faults) > 0 || !res.AllDone {
		t.Fatalf("churn run failed: %+v", res)
	}
	return w, m
}

// TestChurnCleanRun drives the pool with no faults and unlimited slots:
// every worker run must complete on the exact path, every measurement
// must match the static cost, every clone must be accounted, and the
// kernel's resource ledgers must read zero afterwards.
func TestChurnCleanRun(t *testing.T) {
	cfg := ChurnConfig{Pool: 3, Waves: 4, Iters: 25, ComputeK: 20}
	w, m := churnRun(t, cfg, kernel.DefaultConfig())

	if w.ManagerDegraded() {
		t.Fatal("manager degraded with unlimited slots")
	}
	for r := 0; r < w.Runs(); r++ {
		if w.Estimated(r) {
			t.Errorf("run %d flagged estimated on a clean run", r)
		}
		if got := w.Done(r); got != uint64(cfg.Iters) {
			t.Errorf("run %d completed %d/%d iterations", r, got, cfg.Iters)
		}
		for i := 0; i < cfg.Iters; i++ {
			if d := w.Delta(r, i); d < w.Want || d > w.Want+256 {
				t.Errorf("run %d delta[%d] = %d outside [%d,%d]", r, i, d, w.Want, w.Want+256)
			}
		}
	}
	if got, want := m.Kern.Stats.Clones, uint64(w.Runs()); got != want {
		t.Errorf("kernel saw %d clones, want %d", got, want)
	}
	rs := m.Kern.Resources()
	if rs.SlotsInUse != 0 || rs.TableWordsInUse != 0 || rs.RegionsLive != 0 {
		t.Errorf("resources leaked after churn: %+v", rs)
	}
}

// TestChurnManagerFallback starves the manager itself (capacity 1 can
// never hold its two pinned counters): the OpenPolicy must degrade it,
// the process-global flag must reroute every worker to the estimated
// path, and the pool must still complete every run — flagged, never
// silently wrong, never stuck.
func TestChurnManagerFallback(t *testing.T) {
	cfg := ChurnConfig{Pool: 3, Waves: 3, Iters: 20, ComputeK: 20}
	kcfg := kernel.DefaultConfig()
	kcfg.VirtSlotCapacity = 1
	w, m := churnRun(t, cfg, kcfg)

	if !w.ManagerDegraded() {
		t.Fatal("manager not degraded at capacity 1")
	}
	for r := 0; r < w.Runs(); r++ {
		if !w.Estimated(r) {
			t.Errorf("run %d not flagged estimated under manager fallback", r)
		}
		if got := w.Done(r); got != uint64(cfg.Iters) {
			t.Errorf("run %d completed %d/%d iterations", r, got, cfg.Iters)
		}
		for i := 0; i < cfg.Iters; i++ {
			if d := w.Delta(r, i); d < uint64(cfg.ComputeK) || d > uint64(cfg.ComputeK)+64 {
				t.Errorf("run %d estimated delta[%d] = %d outside [%d,%d]",
					r, i, d, cfg.ComputeK, cfg.ComputeK+64)
			}
		}
	}
	rs := m.Kern.Resources()
	if rs.SlotDenials == 0 {
		t.Error("no slot denials recorded at capacity 1")
	}
	if rs.SlotsInUse != 0 {
		t.Errorf("slots leaked: %+v", rs)
	}
}

// TestChurnMultiTenant builds the pool for two tenants — one manager
// and worker set per tenant, disjoint slot and result ranges, a
// per-tenant degradation flag — under the kernel's guest-scheduler
// layer, and checks that every tenant's every run completes exactly
// and that the layout actually partitions by tenant.
func TestChurnMultiTenant(t *testing.T) {
	cfg := ChurnConfig{Pool: 2, Waves: 3, Iters: 20, ComputeK: 20, Tenants: 2}
	kcfg := kernel.DefaultConfig()
	kcfg.Tenants = 2
	kcfg.TenantQuantum = 3_000
	w, m := churnRun(t, cfg, kcfg)

	if len(w.Entries) != 2 {
		t.Fatalf("built %d manager entries, want one per tenant", len(w.Entries))
	}
	if got, want := w.Runs(), cfg.Waves*cfg.Tenants*cfg.Pool; got != want {
		t.Fatalf("Runs() = %d, want %d", got, want)
	}
	for r := 0; r < w.Runs(); r++ {
		if tid := w.TenantOfRun(r); tid < 0 || tid >= cfg.Tenants {
			t.Fatalf("run %d maps to tenant %d", r, tid)
		}
		if w.Estimated(r) {
			t.Errorf("run %d flagged estimated on a clean run", r)
		}
		if got := w.Done(r); got != uint64(cfg.Iters) {
			t.Errorf("run %d completed %d/%d iterations", r, got, cfg.Iters)
		}
	}
	for mt := 0; mt < cfg.Tenants; mt++ {
		if w.TenantDegraded(mt) {
			t.Errorf("tenant %d degraded with unlimited slots", mt)
		}
	}
	if m.Kern.Stats.VCpuSwitches == 0 {
		t.Error("two-tenant churn performed no vCPU switches")
	}
	if got, want := m.Kern.Stats.Clones, uint64(w.Runs()); got != want {
		t.Errorf("kernel saw %d clones, want %d", got, want)
	}
	rs := m.Kern.Resources()
	if rs.SlotsInUse != 0 || rs.TableWordsInUse != 0 || rs.RegionsLive != 0 {
		t.Errorf("resources leaked after tenant churn: %+v", rs)
	}
}
