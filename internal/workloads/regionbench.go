package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/probe"
	"limitsim/internal/profile"
	"limitsim/internal/ref"
	"limitsim/internal/runner"
	"limitsim/internal/tls"
)

// RegionBenchMode selects what the region-overhead microbenchmark
// wraps around each loop iteration's work.
type RegionBenchMode int

const (
	// RegionBenchNone runs the bare loop: no boundary instrumentation.
	RegionBenchNone RegionBenchMode = iota
	// RegionBenchBare brackets the work with raw LiMiT read pairs over
	// the bundle — start values parked in TLS, deltas computed at exit —
	// the floor any bundle measurement pays.
	RegionBenchBare
	// RegionBenchProfiled brackets the work with a full profiler region
	// (accumulators, min/max, histogram).
	RegionBenchProfiled
)

// RegionBenchConfig parameterizes the single-thread overhead loop.
type RegionBenchConfig struct {
	Iters      int
	WorkInstrs int64
	// Lines is how many cache lines each iteration walks (data-cache
	// traffic, so profiled event sums have ground truth to check).
	Lines int64
}

// DefaultRegionBench returns the configuration the overhead pinning
// tests and BenchmarkProfileRegionEnterExit use.
func DefaultRegionBench() RegionBenchConfig {
	return RegionBenchConfig{Iters: 2_000, WorkInstrs: 150, Lines: 8}
}

// BuildRegionBench assembles the microbenchmark: one thread, one hot
// loop, one measured region. The app's body total (TotalCycles) is the
// measured runtime; comparing modes isolates the profiler's enter/exit
// cost against the bare read-pair floor.
func BuildRegionBench(cfg RegionBenchConfig, spec profile.Spec, mode RegionBenchMode) *App {
	spec = spec.Normalized()
	k := len(spec.Events)
	space := mem.NewSpace()
	b := isa.NewBuilder()
	layout := &tls.Layout{}

	le := limit.NewEmitter(b, limit.ModeStock, layout.Reserve(k))
	var prof *profile.Instrumenter
	var ctrs []int
	var scratch ref.Ref
	if mode == RegionBenchProfiled {
		prof = profile.NewInstrumenter(b, layout, le, spec)
		for i := 0; i < k; i++ {
			ctrs = append(ctrs, prof.CounterIndex(i))
		}
	} else {
		for _, ev := range spec.Events {
			ctrs = append(ctrs, le.AddCounter(ev.CounterSpec()))
		}
		scratch = layout.Reserve(2 * k)
	}
	startRef := layout.Reserve(1)
	totalRef := layout.Reserve(1)

	grid := space.Alloc(uint64(cfg.Lines+8) * 64)
	layout.Alloc(space, 1)

	work := func() {
		emitComputeChunked(b, cfg.WorkInstrs, 200)
		if cfg.Lines > 0 {
			b.MovImm(isa.R10, int64(grid))
			emitWalk(b, isa.R10, isa.R12, regBnd, cfg.Lines)
		}
	}

	b.Label("bench")
	layout.EmitProlog(b)
	le.EmitInit()
	le.EmitRead(isa.R4, isa.R3, ctrs[0])
	startRef.EmitStore(b, isa.R4, isa.R3)

	b.MovImm(regTxn, 0)
	b.Label("loop")
	switch mode {
	case RegionBenchProfiled:
		prof.Region("work", profile.KindPhase, work)
	case RegionBenchBare:
		for i := 0; i < k; i++ {
			le.EmitRead(isa.R4, isa.R3, ctrs[i])
			scratch.Word(i).EmitStore(b, isa.R4, isa.R3)
		}
		work()
		for i := 0; i < k; i++ {
			le.EmitRead(isa.R4, isa.R3, ctrs[i])
			scratch.Word(i).EmitLoad(b, isa.R5)
			b.Sub(isa.R4, isa.R4, isa.R5)
			scratch.Word(k+i).EmitStore(b, isa.R4, isa.R3)
		}
	default:
		work()
	}
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.Iters))
	b.Br(isa.CondLT, regTxn, regBnd, "loop")

	le.EmitRead(isa.R4, isa.R3, ctrs[0])
	startRef.EmitLoad(b, isa.R5)
	b.Sub(isa.R4, isa.R4, isa.R5)
	totalRef.EmitStore(b, isa.R4, isa.R3)
	b.Halt()
	le.EmitFinish()

	app := &App{
		Name:   "regionbench",
		Prog:   b.MustBuild(),
		Space:  space,
		Layout: layout,
		Instr:  Instrumentation{Kind: probe.KindLimit, Mode: limit.ModeStock},
		Bodies: []BodyMeta{{Label: "bench", TotalCycles: totalRef, Profiler: prof}},
		Plans:  []ThreadPlan{{Name: "regionbench", Entry: "bench", Slot: 0, Body: 0, Seed: 7000}},
	}
	return app
}

// RegionBenchTotal reads back the measured body runtime in user cycles.
func RegionBenchTotal(app *App) uint64 {
	return app.Space.Read64(app.Bodies[0].TotalCycles.Resolve(app.ThreadBase(app.Plans[0])))
}

// RunRegionBenchModes builds and runs one benchmark per mode — the
// A/B arms of an overhead comparison — fanning the arms out across
// parallel workers (1 = serial, <= 0 = GOMAXPROCS) through the runner
// engine, and returns each arm's measured body runtime in mode order.
// Arms are independent single-core machines, so the totals are
// identical at every width.
func RunRegionBenchModes(cfg RegionBenchConfig, spec profile.Spec, modes []RegionBenchMode, parallel int) ([]uint64, error) {
	return runner.Map(runner.Config{Jobs: len(modes), Parallel: parallel}, func(j, _ int) (uint64, error) {
		app := BuildRegionBench(cfg, spec, modes[j])
		_, res, _ := app.Run(machine.Config{NumCores: 1}, machine.RunLimits{})
		if res.Err != nil {
			return 0, fmt.Errorf("regionbench mode %d: %w", modes[j], res.Err)
		}
		return RegionBenchTotal(app), nil
	})
}
