package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/mem"
	"limitsim/internal/profile"
	"limitsim/internal/rec"
	"limitsim/internal/tls"
	"limitsim/internal/usync"
)

// ApacheConfig parameterizes the web-server model: worker threads
// handle mostly-independent requests dominated by syscall I/O, with a
// single short accept/log lock shared across workers. The paper's
// Apache measurements show kernel time dominating and synchronization
// being a small share with very short critical sections — the shape
// this model reproduces.
type ApacheConfig struct {
	Name              string
	Workers           int
	RequestsPerWorker int
	ParseInstrs       int64
	HandleInstrs      int64
	LogCSInstrs       int64 // critical-section body (log append)
	IOCalls           int
	IOBytes           int64
	FileLines         int64 // file-cache lines touched per request
	Spins             int
}

// DefaultApache returns the case-study configuration.
func DefaultApache() ApacheConfig {
	return ApacheConfig{
		Name:              "apache",
		Workers:           8,
		RequestsPerWorker: 250,
		ParseInstrs:       1_800,
		HandleInstrs:      3_500,
		LogCSInstrs:       120,
		IOCalls:           3,
		IOBytes:           4_096,
		FileLines:         24,
		Spins:             60,
	}
}

// BuildApache assembles the web-server model.
func BuildApache(cfg ApacheConfig, ins Instrumentation) *App {
	space := mem.NewSpace()
	b := isa.NewBuilder()
	layout := &tls.Layout{}
	r := newReader(b, layout, space, ins)

	recCap := cfg.RequestsPerWorker
	lockRec := rec.At(layout.Reserve(rec.SizeWords(recCap, 2)), recCap, 2)
	startRef := layout.Reserve(1)
	totalRef := layout.Reserve(1)
	startRingRef := layout.Reserve(1)
	totalRingRef := layout.Reserve(1)

	logLock := usync.NewMutex(space, cfg.Spins)
	fileCache := space.Alloc(uint64(cfg.FileLines+8) * 64 * 16)
	layout.Alloc(space, cfg.Workers)

	b.Label("worker")
	layout.EmitProlog(b)
	r.prolog(b)
	emitTotalsStart(b, r, startRef, startRingRef)

	b.MovImm(regTxn, 0)
	b.Label("req")
	r.enterRegion("request", profile.KindPhase)
	// Read the request from the socket.
	r.enterRegion("read", profile.KindIO)
	b.MovImm(isa.R0, 512)
	b.Syscall(kernel.SysIO)
	r.exitRegion()
	r.enterRegion("parse", profile.KindPhase)
	emitComputeChunked(b, cfg.ParseInstrs, 250)
	r.exitRegion()

	// Serve from the "file cache": walk a pseudo-random file's lines.
	r.enterRegion("file", profile.KindPhase)
	b.Rand(isa.R11)
	b.MovImm(isa.R10, 15)
	b.And(isa.R11, isa.R11, isa.R10)
	b.MovImm(isa.R12, (cfg.FileLines+8)*64)
	b.Mul(isa.R10, isa.R11, isa.R12)
	b.AddImm(isa.R10, isa.R10, int64(fileCache))
	emitWalk(b, isa.R10, isa.R12, regBnd, cfg.FileLines)
	r.exitRegion()

	r.enterRegion("handle", profile.KindPhase)
	emitComputeChunked(b, cfg.HandleInstrs, 250)
	r.exitRegion()

	// Response I/O: the kernel-heavy phase.
	r.enterRegion("io", profile.KindIO)
	for i := 0; i < cfg.IOCalls; i++ {
		b.MovImm(isa.R0, cfg.IOBytes)
		b.Syscall(kernel.SysIO)
	}
	r.exitRegion()

	// Append to the shared access log under the log lock; the entry
	// length varies with the request.
	emitInstrumentedCS(b, r, "log", logLock.Ref(), cfg.Spins, lockRec, func() {
		emitComputeChunked(b, cfg.LogCSInstrs, 200)
		emitComputeJitter(b, isa.R10, regBnd, 8, cfg.LogCSInstrs/4+1)
	})

	r.exitRegion() // request
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.RequestsPerWorker))
	b.Br(isa.CondLT, regTxn, regBnd, "req")

	emitTotalsEnd(b, r, startRef, totalRef, startRingRef, totalRingRef)
	b.Halt()
	r.epilog(b)

	name := cfg.Name
	if name == "" {
		name = "apache"
	}
	app := &App{
		Name:   name,
		Prog:   b.MustBuild(),
		Space:  space,
		Layout: layout,
		Instr:  ins,
		Bodies: []BodyMeta{{
			Label:         "worker",
			LockRec:       lockRec,
			TotalCycles:   totalRef,
			AllRingCycles: totalRingRef,
			HasRing:       ins.hasRing(),
			Profiler:      r.prof,
		}},
	}
	for w := 0; w < cfg.Workers; w++ {
		app.Plans = append(app.Plans, ThreadPlan{
			Name:  fmt.Sprintf("%s-w%d", name, w),
			Entry: "worker",
			Slot:  w,
			Body:  0,
			Seed:  uint64(2000 + w),
		})
	}
	return app
}
