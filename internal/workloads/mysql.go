package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/profile"
	"limitsim/internal/rec"
	"limitsim/internal/ref"
	"limitsim/internal/tls"
	"limitsim/internal/usync"
)

// MySQLConfig parameterizes the OLTP database model: worker threads
// run transactions that acquire per-table locks (Zipf-flavored: a hot
// table plus a uniform remainder) around short critical sections that
// touch table data. The shape mirrors what the paper measured in
// MySQL with SysBench: many lock acquisitions, mostly very short
// holds, with contention concentrated on hot structures.
type MySQLConfig struct {
	Name          string
	Workers       int
	Tables        int // power of two
	HotTablePct   uint8
	TxnsPerWorker int
	OpsPerTxn     int
	ParseInstrs   int64
	ThinkInstrs   int64
	CSShortInstrs int64
	CSLongInstrs  int64
	LongCSPct     uint8
	CSLines       int64 // data cache lines touched per operation
	TableBytes    int64
	Spins         int
}

// DefaultMySQL returns the MySQL-5.1-class configuration used by the
// case studies.
func DefaultMySQL() MySQLConfig {
	c := MySQLVersion("5.1")
	return c
}

// MySQLVersion returns the longitudinal-study presets. The trend
// across versions mirrors the paper's finding: newer versions acquire
// more locks per transaction (finer-grained locking plus new
// subsystems) with shorter holds, and total synchronization work
// grows.
func MySQLVersion(v string) MySQLConfig {
	base := MySQLConfig{
		Workers:       8,
		TxnsPerWorker: 150,
		ParseInstrs:   2_500,
		ThinkInstrs:   800,
		LongCSPct:     26, // ~10%
		TableBytes:    1 << 14,
		Spins:         40,
	}
	switch v {
	case "3.23":
		base.Name = "mysql-3.23"
		base.Tables = 4
		base.HotTablePct = 64 // 25% hot
		base.OpsPerTxn = 2
		base.CSShortInstrs = 600
		base.CSLongInstrs = 3_000
		base.CSLines = 10
	case "4.1":
		base.Name = "mysql-4.1"
		base.Tables = 8
		base.HotTablePct = 77 // 30% hot
		base.OpsPerTxn = 5
		base.CSShortInstrs = 350
		base.CSLongInstrs = 2_200
		base.CSLines = 7
	case "5.1":
		base.Name = "mysql-5.1"
		base.Tables = 16
		base.HotTablePct = 90 // 35% hot
		base.OpsPerTxn = 11
		base.CSShortInstrs = 180
		base.CSLongInstrs = 1_500
		base.CSLines = 5
	default:
		panic(fmt.Sprintf("workloads: unknown MySQL version %q", v))
	}
	return base
}

// BuildMySQL assembles the MySQL model with the given instrumentation.
func BuildMySQL(cfg MySQLConfig, ins Instrumentation) *App {
	if cfg.Tables&(cfg.Tables-1) != 0 || cfg.Tables == 0 {
		panic("workloads: MySQL Tables must be a power of two")
	}
	space := mem.NewSpace()
	b := isa.NewBuilder()
	layout := &tls.Layout{}
	r := newReader(b, layout, space, ins)

	recCap := cfg.TxnsPerWorker * cfg.OpsPerTxn
	lockRec := rec.At(layout.Reserve(rec.SizeWords(recCap, 2)), recCap, 2)
	startRef := layout.Reserve(1)
	totalRef := layout.Reserve(1)
	startRingRef := layout.Reserve(1)
	totalRingRef := layout.Reserve(1)

	locks := usync.NewLockArray(space, cfg.Tables, cfg.Spins)
	dataBase := space.Alloc(uint64(cfg.Tables) * uint64(cfg.TableBytes))
	layout.Alloc(space, cfg.Workers)

	b.Label("worker")
	layout.EmitProlog(b)
	r.prolog(b)
	emitTotalsStart(b, r, startRef, startRingRef)

	b.MovImm(regTxn, 0)
	b.Label("txn")
	r.enterRegion("txn", profile.KindPhase)
	r.enterRegion("parse", profile.KindPhase)
	emitComputeChunked(b, cfg.ParseInstrs, 250)
	r.exitRegion()

	b.MovImm(regOpI, 0)
	b.Label("op")
	// Pick a table: hot with probability HotTablePct/255, else uniform.
	b.Rand(isa.R11)
	b.MovImm(isa.R10, int64(cfg.Tables-1))
	b.And(isa.R11, isa.R11, isa.R10)
	hot := uniqLabel("hot")
	cont := uniqLabel("cont")
	b.BrRand(cfg.HotTablePct, hot)
	b.Jmp(cont)
	b.Label(hot)
	b.MovImm(isa.R11, 0)
	b.Label(cont)
	locks.EmitComputeAddr(b, isa.R13, isa.R11, isa.R10)

	emitInstrumentedCS(b, r, "table", ref.RegRel(isa.R13, 0), cfg.Spins, lockRec, func() {
		// Short or long operation, with per-operation length jitter so
		// hold times form a distribution rather than two spikes.
		long := uniqLabel("long")
		csEnd := uniqLabel("csend")
		b.BrRand(cfg.LongCSPct, long)
		emitComputeChunked(b, cfg.CSShortInstrs, 200)
		emitComputeJitter(b, isa.R12, regBnd, 16, cfg.CSShortInstrs/8+1)
		b.Jmp(csEnd)
		b.Label(long)
		emitComputeChunked(b, cfg.CSLongInstrs, 200)
		emitComputeJitter(b, isa.R12, regBnd, 16, cfg.CSLongInstrs/8+1)
		b.Label(csEnd)
		b.MovImm(isa.R12, cfg.TableBytes)
		b.Mul(isa.R10, isa.R11, isa.R12)
		b.AddImm(isa.R10, isa.R10, int64(dataBase))
		emitWalk(b, isa.R10, isa.R12, regBnd, cfg.CSLines)
	})

	b.AddImm(regOpI, regOpI, 1)
	b.MovImm(regBnd, int64(cfg.OpsPerTxn))
	b.Br(isa.CondLT, regOpI, regBnd, "op")

	r.enterRegion("think", profile.KindPhase)
	emitComputeChunked(b, cfg.ThinkInstrs, 250)
	r.exitRegion()
	r.exitRegion() // txn
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.TxnsPerWorker))
	b.Br(isa.CondLT, regTxn, regBnd, "txn")

	emitTotalsEnd(b, r, startRef, totalRef, startRingRef, totalRingRef)
	b.Halt()
	r.epilog(b)

	name := cfg.Name
	if name == "" {
		name = "mysql"
	}
	app := &App{
		Name:   name,
		Prog:   b.MustBuild(),
		Space:  space,
		Layout: layout,
		Instr:  ins,
		Bodies: []BodyMeta{{
			Label:         "worker",
			LockRec:       lockRec,
			TotalCycles:   totalRef,
			AllRingCycles: totalRingRef,
			HasRing:       ins.hasRing(),
			Profiler:      r.prof,
		}},
	}
	for w := 0; w < cfg.Workers; w++ {
		app.Plans = append(app.Plans, ThreadPlan{
			Name:  fmt.Sprintf("%s-w%d", name, w),
			Entry: "worker",
			Slot:  w,
			Body:  0,
			Seed:  uint64(1000 + w),
		})
	}
	return app
}
