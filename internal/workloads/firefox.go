package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/mem"
	"limitsim/internal/profile"
	"limitsim/internal/rec"
	"limitsim/internal/tls"
	"limitsim/internal/usync"
)

// FirefoxConfig parameterizes the browser model: one event-loop thread
// dispatching UI events plus helper threads doing decode/layout work.
// Its signature behavior — the one the paper says sampling obscured —
// is an extremely high rate of *tiny* critical sections from the
// shared allocator lock, plus a moderately contended shared-state
// lock touched by the event loop.
type FirefoxConfig struct {
	Name            string
	Helpers         int
	EventsPerThread int
	DispatchInstrs  int64 // event-loop work per event
	DecodeInstrs    int64 // helper work per task
	MallocsPerTask  int
	AllocCSInstrs   int64 // allocator critical section (tiny)
	StateCSInstrs   int64 // event-loop shared-state critical section
	IOBytesPerEvent int64
	Spins           int
}

// DefaultFirefox returns the case-study configuration.
func DefaultFirefox() FirefoxConfig {
	return FirefoxConfig{
		Name:            "firefox",
		Helpers:         6,
		EventsPerThread: 160,
		DispatchInstrs:  2_200,
		DecodeInstrs:    2_800,
		MallocsPerTask:  8,
		AllocCSInstrs:   45,
		StateCSInstrs:   260,
		IOBytesPerEvent: 256,
		Spins:           30,
	}
}

// BuildFirefox assembles the browser model. It emits two bodies in
// one program: "main" (the event loop) and "helper".
func BuildFirefox(cfg FirefoxConfig, ins Instrumentation) *App {
	space := mem.NewSpace()
	b := isa.NewBuilder()
	layout := &tls.Layout{}

	// Each body gets its own reader (its own per-thread counter state),
	// but buffers and totals share the layout.
	rMain := newReader(b, layout, space, ins)
	rHelp := newReader(b, layout, space, ins)

	mainCap := cfg.EventsPerThread
	helpCap := cfg.EventsPerThread * cfg.MallocsPerTask
	mainRec := rec.At(layout.Reserve(rec.SizeWords(mainCap, 2)), mainCap, 2)
	helpRec := rec.At(layout.Reserve(rec.SizeWords(helpCap, 2)), helpCap, 2)
	mStart, mTotal := layout.Reserve(1), layout.Reserve(1)
	mStartR, mTotalR := layout.Reserve(1), layout.Reserve(1)
	hStart, hTotal := layout.Reserve(1), layout.Reserve(1)
	hStartR, hTotalR := layout.Reserve(1), layout.Reserve(1)

	allocLock := usync.NewMutex(space, cfg.Spins)
	stateLock := usync.NewMutex(space, cfg.Spins)
	heap := space.Alloc(1 << 16)
	layout.Alloc(space, 1+cfg.Helpers)

	// ---- main: the event loop ----
	b.Label("main")
	layout.EmitProlog(b)
	rMain.prolog(b)
	emitTotalsStart(b, rMain, mStart, mStartR)

	b.MovImm(regTxn, 0)
	b.Label("event")
	rMain.enterRegion("event", profile.KindPhase)
	rMain.enterRegion("dispatch", profile.KindPhase)
	emitComputeChunked(b, cfg.DispatchInstrs, 200)
	rMain.exitRegion()
	// Poke the shared state under its lock.
	emitInstrumentedCS(b, rMain, "state", stateLock.Ref(), cfg.Spins, mainRec, func() {
		emitComputeChunked(b, cfg.StateCSInstrs, 150)
		emitComputeJitter(b, isa.R10, regBnd, 8, cfg.StateCSInstrs/4+1)
	})
	// Occasional UI I/O.
	rMain.enterRegion("io", profile.KindIO)
	b.MovImm(isa.R0, cfg.IOBytesPerEvent)
	b.Syscall(kernel.SysIO)
	rMain.exitRegion()
	rMain.exitRegion() // event
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.EventsPerThread))
	b.Br(isa.CondLT, regTxn, regBnd, "event")

	emitTotalsEnd(b, rMain, mStart, mTotal, mStartR, mTotalR)
	b.Halt()

	// ---- helper: decode tasks with allocator churn ----
	b.Label("helper")
	layout.EmitProlog(b)
	rHelp.prolog(b)
	emitTotalsStart(b, rHelp, hStart, hStartR)

	b.MovImm(regTxn, 0)
	b.Label("task")
	rHelp.enterRegion("task", profile.KindPhase)
	rHelp.enterRegion("decode", profile.KindPhase)
	emitComputeChunked(b, cfg.DecodeInstrs, 200)
	rHelp.exitRegion()
	b.MovImm(regOpI, 0)
	b.Label("malloc")
	emitInstrumentedCS(b, rHelp, "alloc", allocLock.Ref(), cfg.Spins, helpRec, func() {
		// The allocator's tiny critical section: bump a freelist word
		// and do a handful of bookkeeping instructions.
		b.MovImm(isa.R10, int64(heap))
		b.Load(isa.R12, isa.R10, 0)
		b.AddImm(isa.R12, isa.R12, 64)
		b.Store(isa.R10, 0, isa.R12)
		emitComputeChunked(b, cfg.AllocCSInstrs, 150)
		emitComputeJitter(b, isa.R10, regBnd, 8, cfg.AllocCSInstrs/4+1)
	})
	b.AddImm(regOpI, regOpI, 1)
	b.MovImm(regBnd, int64(cfg.MallocsPerTask))
	b.Br(isa.CondLT, regOpI, regBnd, "malloc")

	rHelp.exitRegion() // task
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.EventsPerThread))
	b.Br(isa.CondLT, regTxn, regBnd, "task")

	emitTotalsEnd(b, rHelp, hStart, hTotal, hStartR, hTotalR)
	b.Halt()

	rMain.epilog(b)
	rHelp.epilog(b)

	name := cfg.Name
	if name == "" {
		name = "firefox"
	}
	app := &App{
		Name:   name,
		Prog:   b.MustBuild(),
		Space:  space,
		Layout: layout,
		Instr:  ins,
		Bodies: []BodyMeta{
			{Label: "main", LockRec: mainRec, TotalCycles: mTotal, AllRingCycles: mTotalR, HasRing: ins.hasRing(), Profiler: rMain.prof},
			{Label: "helper", LockRec: helpRec, TotalCycles: hTotal, AllRingCycles: hTotalR, HasRing: ins.hasRing(), Profiler: rHelp.prof},
		},
	}
	app.Plans = append(app.Plans, ThreadPlan{Name: name + "-main", Entry: "main", Slot: 0, Body: 0, Seed: 3000})
	for w := 0; w < cfg.Helpers; w++ {
		app.Plans = append(app.Plans, ThreadPlan{
			Name:  fmt.Sprintf("%s-h%d", name, w),
			Entry: "helper",
			Slot:  1 + w,
			Body:  1,
			Seed:  uint64(3100 + w),
		})
	}
	return app
}
