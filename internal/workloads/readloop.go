package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/mem"
	"limitsim/internal/rec"
	"limitsim/internal/tls"
)

// ReadLoopConfig parameterizes the overhead microbenchmark: a loop of
// fixed compute work with one counter read per iteration. Sweeping
// WorkInstrs sweeps the instrumentation density (reads per
// kilo-instruction); comparing total runtime against the
// uninstrumented build yields each access method's overhead — the
// paper's slowdown-vs-density figure.
type ReadLoopConfig struct {
	Name       string
	Threads    int
	Iters      int
	WorkInstrs int64
}

// DefaultReadLoop returns a single-thread loop with moderate density.
func DefaultReadLoop() ReadLoopConfig {
	return ReadLoopConfig{Name: "readloop", Threads: 1, Iters: 20_000, WorkInstrs: 1_000}
}

// BuildReadLoop assembles the overhead microbenchmark.
func BuildReadLoop(cfg ReadLoopConfig, ins Instrumentation) *App {
	space := mem.NewSpace()
	b := isa.NewBuilder()
	layout := &tls.Layout{}
	r := newReader(b, layout, space, ins)

	startRef := layout.Reserve(1)
	totalRef := layout.Reserve(1)
	startRingRef := layout.Reserve(1)
	totalRingRef := layout.Reserve(1)
	layout.Alloc(space, cfg.Threads)

	b.Label("worker")
	layout.EmitProlog(b)
	r.prolog(b)
	emitTotalsStart(b, r, startRef, startRingRef)

	b.MovImm(regTxn, 0)
	b.Label("loop")
	if cfg.WorkInstrs > 0 {
		emitComputeChunked(b, cfg.WorkInstrs, 500)
	}
	r.read(b, regT0)
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.Iters))
	b.Br(isa.CondLT, regTxn, regBnd, "loop")

	emitTotalsEnd(b, r, startRef, totalRef, startRingRef, totalRingRef)
	b.Halt()
	r.epilog(b)

	app := &App{
		Name:   cfg.Name,
		Prog:   b.MustBuild(),
		Space:  space,
		Layout: layout,
		Instr:  ins,
		Bodies: []BodyMeta{{
			Label:         "worker",
			TotalCycles:   totalRef,
			AllRingCycles: totalRingRef,
			HasRing:       ins.hasRing(),
		}},
	}
	for w := 0; w < cfg.Threads; w++ {
		app.Plans = append(app.Plans, ThreadPlan{
			Name:  fmt.Sprintf("%s-w%d", cfg.Name, w),
			Entry: "worker",
			Slot:  w,
			Body:  0,
			Seed:  uint64(4000 + w),
		})
	}
	return app
}

// RegionConfig parameterizes the measured-regions microbenchmark: a
// loop that measures a region of exactly RegionInstrs compute
// instructions with the configured access method and appends each
// measured cycle delta to a record buffer. With CountKernelRing
// instrumentation, a method's own trap/kernel time lands inside the
// measured window — the paper's self-perturbation experiment.
type RegionConfig struct {
	Name         string
	RegionInstrs int64
	Iters        int
}

// BuildMeasuredRegions assembles the measured-regions microbenchmark
// (single thread). The body's Rec buffer holds one measured delta per
// iteration (stride 1).
func BuildMeasuredRegions(cfg RegionConfig, ins Instrumentation) *App {
	space := mem.NewSpace()
	b := isa.NewBuilder()
	layout := &tls.Layout{}
	r := newReader(b, layout, space, ins)

	buf := rec.At(layout.Reserve(rec.SizeWords(cfg.Iters, 1)), cfg.Iters, 1)
	startRef := layout.Reserve(1)
	totalRef := layout.Reserve(1)
	startRingRef := layout.Reserve(1)
	totalRingRef := layout.Reserve(1)
	layout.Alloc(space, 1)

	b.Label("worker")
	layout.EmitProlog(b)
	r.prolog(b)
	emitTotalsStart(b, r, startRef, startRingRef)

	b.MovImm(regTxn, 0)
	b.Label("loop")
	r.read(b, regT0) // region start
	emitComputeChunked(b, cfg.RegionInstrs, 500)
	r.read(b, regT2) // region end
	b.Sub(regT2, regT2, regT0)
	if ins.Active() {
		buf.EmitAppend(b, []isa.Reg{regT2}, isa.R0, isa.R1, isa.R2)
	}
	b.AddImm(regTxn, regTxn, 1)
	b.MovImm(regBnd, int64(cfg.Iters))
	b.Br(isa.CondLT, regTxn, regBnd, "loop")

	emitTotalsEnd(b, r, startRef, totalRef, startRingRef, totalRingRef)
	b.Halt()
	r.epilog(b)

	app := &App{
		Name:   cfg.Name,
		Prog:   b.MustBuild(),
		Space:  space,
		Layout: layout,
		Instr:  ins,
		Bodies: []BodyMeta{{
			Label:         "worker",
			LockRec:       buf,
			TotalCycles:   totalRef,
			AllRingCycles: totalRingRef,
			HasRing:       ins.hasRing(),
		}},
	}
	app.Plans = append(app.Plans, ThreadPlan{Name: cfg.Name, Entry: "worker", Slot: 0, Body: 0, Seed: 4500})
	return app
}
