package workloads

import (
	"fmt"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/mem"
	"limitsim/internal/perfevent"
	"limitsim/internal/pmu"
	"limitsim/internal/ref"
	"limitsim/internal/tls"
)

// Churn is a thread-pool connection-churn workload shaped like the
// MySQL longitudinal study's server: one long-lived manager thread
// clones a pool of short-lived workers, joins them, and repeats for a
// fixed number of waves. Every worker inherits the manager's counter
// configuration through SysClone and measures a fixed compute region
// with the stock rdpmc read sequence, so the workload exercises the
// whole lifecycle surface at once: counter inheritance, per-wave
// virtual-counter-word recycling, slot ledger churn, and exit-time
// reclamation under kills and forced clones.
//
// With Tenants > 1 the program carries that many independent
// manager+pool copies — one guest VM each, every copy with its own
// emitter, counters, degradation flag and wave word — so a multi-tenant
// soak churns all lifecycle surfaces inside every guest while the
// tenant scheduler time-shares the cores between them.
//
// Degradation is part of the contract, not a failure: if a manager
// cannot pin its counters it falls back to multiplexed perf estimates
// via the emitter's OpenPolicy (raising that tenant's flag), and if a
// clone is denied pinned slots the child arrives degraded (clone
// status register set). Workers check both and route to an estimated
// SysPerfRead path that marks its runs, so every stored measurement is
// either exact or flagged — never silently wrong.

// ChurnConfig shapes the churn workload.
type ChurnConfig struct {
	// Pool is the worker-pool width per tenant: workers cloned (and
	// joined) per wave (default 4).
	Pool int
	// Waves is how many clone/join rounds each manager runs (default 6).
	Waves int
	// Iters is measured reads per worker (default 40).
	Iters int
	// ComputeK is the measured region's compute-instruction count
	// (default 20).
	ComputeK int
	// Retries is the manager OpenPolicy's transient-exhaustion retry
	// budget (0: the policy default).
	Retries int
	// NoFixup disables fixup-region registration — the ablation that
	// must make a campaign over this workload report torn reads.
	NoFixup bool
	// Tenants is how many independent manager+pool copies the program
	// carries (default 1 — the classic single-tenant churn).
	Tenants int
	// MuxGroups opens one multiplexed event group per entry on each
	// manager thread (workers never open groups: SysClone does not
	// inherit them, matching perf semantics). Managers live the whole
	// run, so their frame streams span every wave.
	MuxGroups [][]perfevent.Spec
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Pool <= 0 {
		c.Pool = 4
	}
	if c.Waves <= 0 {
		c.Waves = 6
	}
	if c.Iters <= 0 {
		c.Iters = 40
	}
	if c.ComputeK <= 0 {
		c.ComputeK = 20
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	return c
}

// Churn is one built churn program plus the host-side handles its
// oracles need.
type Churn struct {
	Cfg    ChurnConfig
	Prog   *isa.Program
	Space  *mem.Space
	Layout *tls.Layout

	// Entries[m] is tenant m's manager entry PC; spawn it at slot
	// ManagerSlot(m). Entry is Entries[0], kept for the single-tenant
	// spelling. Worker slots are global: tenant m owns m*Pool ..
	// m*Pool+Pool-1.
	Entries []int
	Entry   int
	// StubEntry is a clone-storm target: inherit, compute briefly, exit.
	StubEntry int
	// Regions are the emitters' read-critical PC ranges.
	Regions [][2]int
	// Want is the static per-read delta on the exact path: ComputeK plus
	// the read sequence itself.
	Want uint64

	deltas uint64 // [Waves*Tenants*Pool][Iters] measured deltas
	done   uint64 // [Waves*Tenants*Pool] completed iterations per worker run
	est    uint64 // [Waves*Tenants*Pool] nonzero when the run took the estimated path
	flag   uint64 // [Tenants] nonzero when that tenant's manager degraded
	wave   uint64 // [Tenants] current wave, maintained by each manager
	tids   uint64 // [Tenants*Pool] child TIDs of the waves in flight
}

// ManagerSlot returns tenant m's manager TLS slot index (managers sit
// above every tenant's worker slots).
func (c *Churn) ManagerSlot(m int) int { return c.Cfg.Tenants*c.Cfg.Pool + m }

// Runs returns the total worker-run count (Waves x Tenants x Pool).
func (c *Churn) Runs() int { return c.Cfg.Waves * c.Cfg.Tenants * c.Cfg.Pool }

// TenantOfRun returns which tenant worker run r belongs to.
func (c *Churn) TenantOfRun(r int) int {
	return (r % (c.Cfg.Tenants * c.Cfg.Pool)) / c.Cfg.Pool
}

// Done returns how many iterations worker run r completed (kills leave
// partial runs; entries beyond Done are unwritten).
func (c *Churn) Done(r int) uint64 {
	return c.Space.Read64(c.done + uint64(r)*8)
}

// Estimated reports whether run r's measurements are flagged estimates
// (a degraded clone, or a fallback by the owning tenant's manager).
func (c *Churn) Estimated(r int) bool {
	return c.Space.Read64(c.est+uint64(r)*8) != 0 || c.TenantDegraded(c.TenantOfRun(r))
}

// Delta returns run r's i'th measured delta.
func (c *Churn) Delta(r, i int) uint64 {
	return c.Space.Read64(c.deltas + (uint64(r)*uint64(c.Cfg.Iters)+uint64(i))*8)
}

// TenantDegraded reports whether tenant m's manager OpenPolicy fell
// back to multiplexed estimates.
func (c *Churn) TenantDegraded(m int) bool {
	return c.Space.Read64(c.flag+uint64(m)*8) != 0
}

// ManagerDegraded reports whether any tenant's manager degraded.
func (c *Churn) ManagerDegraded() bool {
	for m := 0; m < c.Cfg.Tenants; m++ {
		if c.TenantDegraded(m) {
			return true
		}
	}
	return false
}

// BuildChurn assembles the churn program. Each tenant's manager owns
// two LiMiT counters (user instructions — the conservation oracle's
// subject — and user cycles for extra slot pressure and overflow-fold
// traffic); each cloned worker inherits both, backed by the worker
// slot's TLS table words, which SysClone zeroes every wave.
func BuildChurn(cfg ChurnConfig) *Churn {
	cfg = cfg.withDefaults()
	w := &Churn{Cfg: cfg, Space: mem.NewSpace(), Layout: &tls.Layout{}}

	tableRef := w.Layout.Reserve(2) // offset 0: clone tableBase == slot TLS base
	w.Layout.Alloc(w.Space, cfg.Tenants*cfg.Pool+cfg.Tenants)

	runs := uint64(cfg.Waves * cfg.Tenants * cfg.Pool)
	w.deltas = w.Space.AllocWords(runs * uint64(cfg.Iters))
	w.done = w.Space.AllocWords(runs)
	w.est = w.Space.AllocWords(runs)
	w.flag = w.Space.AllocWords(uint64(cfg.Tenants))
	w.wave = w.Space.AllocWords(uint64(cfg.Tenants))
	w.tids = w.Space.AllocWords(uint64(cfg.Tenants * cfg.Pool))

	b := isa.NewBuilder()

	// Clone-storm stub, shared by every tenant: inherit whatever the
	// victim holds, burn a few instructions, exit — pure lifecycle
	// pressure.
	w.StubEntry = b.PC()
	b.Compute(3)
	b.Syscall(kernel.SysExit)

	for m := 0; m < cfg.Tenants; m++ {
		buildChurnTenant(b, w, m, tableRef)
	}
	w.Entry = w.Entries[0]

	w.Prog = b.MustBuild()
	r := w.Regions[0]
	w.Want = uint64(cfg.ComputeK) + uint64(r[1]-r[0])
	return w
}

// buildChurnTenant emits tenant m's complete program copy: its own
// emitter (and therefore counters, fixup regions and OpenPolicy), the
// manager wave loop, and the exact and estimated worker bodies.
func buildChurnTenant(b *isa.Builder, w *Churn, m int, tableRef ref.Ref) {
	cfg := w.Cfg
	lbl := func(s string) string { return fmt.Sprintf("churn.%s.%d", s, m) }

	e := limit.NewEmitter(b, limit.ModeStock, tableRef)
	c0 := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
	e.AddCounter(limit.UserCounter(pmu.EvCycles))
	e.SetOpenPolicy(limit.OpenPolicy{
		Retries:       cfg.Retries,
		FallbackLabel: lbl("mgr.run"),
		FlagRef:       ref.Absolute(w.flag + uint64(m)*8),
	})
	if cfg.NoFixup {
		e.DisableFixupRegistration()
	}

	// Manager: open counters (exact, or degrade via the policy), then
	// run the wave loop either way — a degraded manager still serves.
	// Event groups open after the fallback label so a degraded manager
	// still carries them (they use leftover slots, never pinned ones).
	w.Entries = append(w.Entries, b.PC())
	w.Layout.EmitProlog(b)
	e.EmitInit()
	b.Label(lbl("mgr.run"))
	for _, specs := range cfg.MuxGroups {
		perfevent.EmitGroupOpen(b, perfevent.GroupTable(w.Space, specs), len(specs))
	}
	b.MovImm(isa.R8, 0) // wave
	b.Label(lbl("mgr.wave"))
	b.MovImm(isa.R10, int64(w.wave+uint64(m)*8))
	b.Store(isa.R10, 0, isa.R8)
	for s := 0; s < cfg.Pool; s++ {
		slot := m*cfg.Pool + s
		b.MovLabel(isa.R0, lbl("worker"))
		b.MovImm(isa.R1, int64(slot)) // worker TLS slot (global)
		b.MovImm(isa.R9, int64(cfg.Tenants*cfg.Pool))
		b.Mul(isa.R2, isa.R8, isa.R9)
		b.AddImm(isa.R2, isa.R2, int64(7777+slot)) // per-run seed
		b.MovImm(isa.R3, int64(w.Layout.ThreadBase(slot)))
		b.Syscall(kernel.SysClone)
		b.MovImm(isa.R10, int64(w.tids+uint64(slot)*8))
		b.Store(isa.R10, 0, isa.R0)
	}
	for s := 0; s < cfg.Pool; s++ {
		slot := m*cfg.Pool + s
		b.MovImm(isa.R10, int64(w.tids+uint64(slot)*8))
		b.Load(isa.R0, isa.R10, 0)
		b.Syscall(kernel.SysJoin)
	}
	b.AddImm(isa.R8, isa.R8, 1)
	b.MovImm(isa.R9, int64(cfg.Waves))
	b.Br(isa.CondLT, isa.R8, isa.R9, lbl("mgr.wave"))
	b.Halt()

	// Worker: route by degradation state, then measure Iters regions,
	// storing each delta before bumping the done count so a kill can
	// never make an unwritten entry look measured.
	b.Label(lbl("worker"))
	w.Layout.EmitProlog(b)
	b.Mov(isa.R7, isa.R0) // clone status: 1 = this child degraded
	b.MovImm(isa.R4, int64(w.flag+uint64(m)*8))
	b.Load(isa.R5, isa.R4, 0)
	b.MovImm(isa.R6, 0)
	b.Br(isa.CondNE, isa.R5, isa.R6, lbl("worker.deg"))
	b.Br(isa.CondNE, isa.R7, isa.R6, lbl("worker.deg"))
	emitChurnRunAddrs(b, w, m, false)
	b.MovImm(isa.R8, 0)
	b.Label(lbl("worker.loop"))
	e.EmitMeasureStart(isa.R9, isa.R10, c0)
	b.Compute(int64(cfg.ComputeK))
	e.EmitMeasureEnd(isa.R11, isa.R9, isa.R10, c0)
	emitChurnStoreDelta(b, cfg, lbl("worker.loop"))
	b.Syscall(kernel.SysExit)

	// Estimated path: the same measurements through SysPerfRead on the
	// (multiplexed, flagged) inherited counter 0, with the run marked.
	b.Label(lbl("worker.deg"))
	emitChurnRunAddrs(b, w, m, true)
	b.MovImm(isa.R8, 0)
	b.Label(lbl("worker.degloop"))
	b.MovImm(isa.R0, 0)
	b.Syscall(kernel.SysPerfRead)
	b.Mov(isa.R9, isa.R0)
	b.Compute(int64(cfg.ComputeK))
	b.MovImm(isa.R0, 0)
	b.Syscall(kernel.SysPerfRead)
	b.Sub(isa.R11, isa.R0, isa.R9)
	emitChurnStoreDelta(b, cfg, lbl("worker.degloop"))
	b.Syscall(kernel.SysExit)

	e.EmitFinish()
	w.Regions = append(w.Regions, e.Regions()...)
}

// emitChurnRunAddrs computes the worker's run index
// (wave*Tenants*Pool + slot, the slot already tenant-offset) and leaves
// the run's delta-buffer base in R6 and its done-word address in R7;
// when mark is set it also raises the run's estimate marker. Clobbers
// R4, R5.
func emitChurnRunAddrs(b *isa.Builder, w *Churn, m int, mark bool) {
	cfg := w.Cfg
	b.MovImm(isa.R4, int64(w.wave+uint64(m)*8))
	b.Load(isa.R5, isa.R4, 0)
	b.MovImm(isa.R6, int64(cfg.Tenants*cfg.Pool))
	b.Mul(isa.R5, isa.R5, isa.R6)
	b.Add(isa.R5, isa.R5, tls.SlotReg) // runIdx = wave*Tenants*Pool + slot
	if mark {
		b.Shl(isa.R4, isa.R5, 3)
		b.AddImm(isa.R4, isa.R4, int64(w.est))
		b.MovImm(isa.R6, 1)
		b.Store(isa.R4, 0, isa.R6)
	}
	b.MovImm(isa.R6, int64(cfg.Iters)*8)
	b.Mul(isa.R6, isa.R5, isa.R6)
	b.AddImm(isa.R6, isa.R6, int64(w.deltas))
	b.Shl(isa.R7, isa.R5, 3)
	b.AddImm(isa.R7, isa.R7, int64(w.done))
}

// emitChurnStoreDelta stores the delta in R11 at slot R8 of the run's
// buffer (base R6), advances the iteration counter, publishes it to the
// done word (R7), and loops to label until Iters. Clobbers R12.
func emitChurnStoreDelta(b *isa.Builder, cfg ChurnConfig, label string) {
	b.Shl(isa.R12, isa.R8, 3)
	b.Add(isa.R12, isa.R12, isa.R6)
	b.Store(isa.R12, 0, isa.R11)
	b.AddImm(isa.R8, isa.R8, 1)
	b.Store(isa.R7, 0, isa.R8)
	b.MovImm(isa.R12, int64(cfg.Iters))
	b.Br(isa.CondLT, isa.R8, isa.R12, label)
}
