package workloads

import (
	"testing"

	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/probe"
)

func smallMySQL() MySQLConfig {
	cfg := MySQLVersion("5.1")
	cfg.Workers = 4
	cfg.TxnsPerWorker = 20
	return cfg
}

func runApp(t *testing.T, app *App, cores int) (*machine.Machine, machine.RunResult) {
	t.Helper()
	m := machine.New(machine.Config{NumCores: cores})
	app.Launch(m)
	res := m.Run(machine.RunLimits{MaxSteps: 200_000_000})
	if len(res.Faults) > 0 {
		t.Fatalf("%s: faults: %v", app.Name, res.Faults)
	}
	if res.Deadlocked {
		t.Fatalf("%s: deadlocked", app.Name)
	}
	if !res.AllDone {
		t.Fatalf("%s: did not finish: %v", app.Name, res)
	}
	return m, res
}

func TestMySQLRunsAndRecords(t *testing.T) {
	cfg := smallMySQL()
	app := BuildMySQL(cfg, LimitInstr())
	_, _ = runApp(t, app, 4)

	body := app.Bodies[0]
	wantOps := uint64(cfg.TxnsPerWorker * cfg.OpsPerTxn)
	for _, plan := range app.Plans {
		tb := app.ThreadBase(plan)
		n := body.LockRec.Count(app.Space, tb)
		if n != wantOps {
			t.Errorf("%s: %d lock records, want %d", plan.Name, n, wantOps)
		}
		total := app.Space.Read64(body.TotalCycles.Resolve(tb))
		if total == 0 {
			t.Errorf("%s: zero measured total cycles", plan.Name)
		}
		var sync uint64
		for _, r := range body.LockRec.Records(app.Space, tb) {
			acq, cs := r[0], r[1]
			if cs < uint64(cfg.CSShortInstrs) {
				t.Fatalf("%s: cs delta %d below minimum body %d", plan.Name, cs, cfg.CSShortInstrs)
			}
			if cs > 10_000_000 || acq > 50_000_000 {
				t.Fatalf("%s: implausible deltas acq=%d cs=%d", plan.Name, acq, cs)
			}
			sync += acq + cs
		}
		if sync >= total {
			t.Errorf("%s: sync %d >= total %d", plan.Name, sync, total)
		}
	}
}

func TestMySQLVersionsOrdering(t *testing.T) {
	// Newer versions must acquire more locks per transaction.
	prev := 0
	for _, v := range []string{"3.23", "4.1", "5.1"} {
		cfg := MySQLVersion(v)
		if cfg.OpsPerTxn <= prev {
			t.Errorf("version %s: OpsPerTxn %d not increasing", v, cfg.OpsPerTxn)
		}
		prev = cfg.OpsPerTxn
	}
}

func TestApacheRunsAndIsKernelHeavy(t *testing.T) {
	cfg := DefaultApache()
	cfg.Workers = 4
	cfg.RequestsPerWorker = 40
	app := BuildApache(cfg, LimitInstr())
	_, _ = runApp(t, app, 4)

	body := app.Bodies[0]
	var user, all uint64
	for _, plan := range app.Plans {
		tb := app.ThreadBase(plan)
		user += app.Space.Read64(body.TotalCycles.Resolve(tb))
		all += app.Space.Read64(body.AllRingCycles.Resolve(tb))
	}
	if all <= user {
		t.Fatalf("user+kernel total %d not above user total %d", all, user)
	}
	kernelShare := float64(all-user) / float64(all)
	if kernelShare < 0.15 {
		t.Errorf("apache kernel share %.3f too low; model should be kernel-heavy", kernelShare)
	}
}

func TestFirefoxRunsWithTinyCriticalSections(t *testing.T) {
	cfg := DefaultFirefox()
	cfg.Helpers = 3
	cfg.EventsPerThread = 40
	app := BuildFirefox(cfg, LimitInstr())
	_, _ = runApp(t, app, 4)

	helper := app.Bodies[1]
	var csSum, csN uint64
	for _, plan := range app.Plans {
		if plan.Body != 1 {
			continue
		}
		tb := app.ThreadBase(plan)
		for _, r := range helper.LockRec.Records(app.Space, tb) {
			csSum += r[1]
			csN++
		}
	}
	if csN == 0 {
		t.Fatal("no helper lock records")
	}
	mean := float64(csSum) / float64(csN)
	if mean > 500 {
		t.Errorf("allocator critical sections mean %.0f cycles; expected tiny (<500)", mean)
	}
}

func TestReadLoopAllKinds(t *testing.T) {
	for _, kind := range probe.AllKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cfg := DefaultReadLoop()
			cfg.Iters = 2_000
			app := BuildReadLoop(cfg, Instrumentation{Kind: kind, SamplePeriod: 50_000})
			m, _ := runApp(t, app, 1)
			if kind == probe.KindSample && len(m.Kern.Samples()) == 0 {
				t.Error("sampling produced no samples")
			}
		})
	}
}

func TestRdtscLeaksDescheduledTime(t *testing.T) {
	// The rdtsc baseline is cheap but unvirtualized: a region measured
	// with raw cycle reads absorbs every context switch and the rival
	// thread's entire time slice, while LiMiT's virtualized cycles
	// count only the measuring thread. This is Table 1's
	// "virtualized" column made concrete.
	run := func(kind probe.Kind) float64 {
		cfg := RegionConfig{Name: "virt-" + string(kind), RegionInstrs: 3_000, Iters: 150}
		app := BuildMeasuredRegions(cfg, Instrumentation{Kind: kind})

		kcfg := kernelDefaultSmallQuantum()
		m := machine.New(machine.Config{NumCores: 1, Kernel: kcfg})
		app.Launch(m)
		// A rival process sharing the single core.
		b := isa.NewBuilder()
		b.MovImm(isa.R1, 0)
		b.MovImm(isa.R2, 3_000_000)
		b.Label("l")
		b.Compute(200)
		b.AddImm(isa.R1, isa.R1, 200)
		b.Br(isa.CondLT, isa.R1, isa.R2, "l")
		b.Halt()
		rival := m.Kern.NewProcess(b.MustBuild(), nil)
		m.Kern.Spawn(rival, "rival", 0, 99)

		res := m.Run(machine.RunLimits{MaxSteps: 200_000_000})
		if len(res.Faults) > 0 || !res.AllDone {
			t.Fatalf("%s: %v", kind, res)
		}
		body := app.Bodies[0]
		deltas := body.LockRec.Column(app.Space, app.ThreadBase(app.Plans[0]), 0)
		var sum float64
		for _, d := range deltas {
			sum += float64(d)
		}
		return sum / float64(len(deltas))
	}

	limitMean := run(probe.KindLimit)
	rdtscMean := run(probe.KindRdtsc)
	if limitMean > 3_400 {
		t.Errorf("limit mean %f; virtualized cycles should stay near the region size", limitMean)
	}
	if rdtscMean < 2*limitMean {
		t.Errorf("rdtsc mean %f vs limit %f; raw cycles should absorb rival time slices",
			rdtscMean, limitMean)
	}
}

func TestProcessWideCounting(t *testing.T) {
	// The sum of per-thread LiMiT totals is exact process-wide
	// accounting, matching kernel ground truth across all workers.
	cfg := smallMySQL()
	app := BuildMySQL(cfg, LimitInstr())
	m, _ := runApp(t, app, 4)

	threads := m.Kern.Threads()
	proc := threads[0].Proc
	total, err := limit.ProcessTotal(proc, threads, 0)
	if err != nil {
		t.Fatal(err)
	}
	var truth uint64
	for _, th := range threads {
		truth += th.Stats.UserCycles
	}
	if total > truth {
		t.Fatalf("process-wide counter %d exceeds ground truth %d", total, truth)
	}
	// The only uncounted cycles are each thread's setup prologue.
	if truth-total > uint64(len(app.Plans))*200 {
		t.Fatalf("process-wide counter %d too far below ground truth %d", total, truth)
	}
}

func TestMeasuredRegionsPrecision(t *testing.T) {
	cfg := RegionConfig{Name: "regions", RegionInstrs: 5_000, Iters: 200}
	app := BuildMeasuredRegions(cfg, LimitInstr())
	_, _ = runApp(t, app, 1)
	body := app.Bodies[0]
	tb := app.ThreadBase(app.Plans[0])
	recs := body.LockRec.Column(app.Space, tb, 0)
	if len(recs) != cfg.Iters {
		t.Fatalf("got %d records, want %d", len(recs), cfg.Iters)
	}
	for i, d := range recs {
		// Region is RegionInstrs 1-cycle instructions plus the read
		// tail; allow small slack, no tearing.
		if d < uint64(cfg.RegionInstrs) || d > uint64(cfg.RegionInstrs)+200 {
			t.Fatalf("record %d: delta %d implausible for region %d", i, d, cfg.RegionInstrs)
		}
	}
}

// kernelDefaultSmallQuantum returns a kernel config with an aggressive
// quantum so single-core contention produces many switches.
func kernelDefaultSmallQuantum() kernel.Config {
	kcfg := kernel.DefaultConfig()
	kcfg.Quantum = 5_000
	return kcfg
}

func TestForkJoinSolver(t *testing.T) {
	cfg := DefaultForkJoin()
	cfg.Workers = 4
	cfg.Iterations = 12
	app := BuildForkJoin(cfg, LimitInstr())
	m, _ := runApp(t, app, 4)

	// All workers were created by SysSpawn: parent + workers in total.
	if n := len(m.Kern.Threads()); n != 1+cfg.Workers {
		t.Fatalf("threads %d, want %d", n, 1+cfg.Workers)
	}

	worker := app.Bodies[1]
	for _, plan := range app.Plans {
		if plan.Body != 1 {
			continue
		}
		tb := app.ThreadBase(plan)
		if n := worker.LockRec.Count(app.Space, tb); n != uint64(cfg.Iterations) {
			t.Errorf("%s: %d reduction records, want %d", plan.Name, n, cfg.Iterations)
		}
		waits := worker.BarrierRec.Column(app.Space, tb, 0)
		if len(waits) != cfg.Iterations {
			t.Fatalf("%s: %d barrier records, want %d", plan.Name, len(waits), cfg.Iterations)
		}
		for i, w := range waits {
			if w > 5_000_000 {
				t.Errorf("%s: barrier wait %d at episode %d implausible", plan.Name, w, i)
			}
		}
	}
}

func TestForkJoinReductionExact(t *testing.T) {
	// The reduction increments a shared word once per worker per
	// iteration under the lock; the final sum proves mutual exclusion
	// held across SysSpawn-created threads.
	cfg := DefaultForkJoin()
	cfg.Workers = 5
	cfg.Iterations = 10
	app := BuildForkJoin(cfg, LimitInstr())
	_, _ = runApp(t, app, 4)

	// Every worker recorded exactly Iterations reductions; their sum
	// proves the whole fork-join pipeline ran to completion.
	total := 0
	worker := app.Bodies[1]
	for _, plan := range app.Plans {
		if plan.Body == 1 {
			total += int(worker.LockRec.Count(app.Space, app.ThreadBase(plan)))
		}
	}
	if total != cfg.Workers*cfg.Iterations {
		t.Errorf("reductions recorded %d, want %d", total, cfg.Workers*cfg.Iterations)
	}
}

func TestAppLevelDeterminism(t *testing.T) {
	// Two identical MySQL runs must produce bit-identical measurements:
	// every record, every counter, every kernel statistic.
	runOnce := func() (cycles uint64, acqSum, csSum uint64, switches uint64) {
		cfg := smallMySQL()
		app := BuildMySQL(cfg, LimitInstr())
		m, res := runApp(t, app, 4)
		body := app.Bodies[0]
		for _, plan := range app.Plans {
			for _, r := range body.LockRec.Records(app.Space, app.ThreadBase(plan)) {
				acqSum += r[0]
				csSum += r[1]
			}
		}
		return res.Cycles, acqSum, csSum, m.Kern.Stats.CtxSwitches
	}
	c1, a1, s1, w1 := runOnce()
	c2, a2, s2, w2 := runOnce()
	if c1 != c2 || a1 != a2 || s1 != s2 || w1 != w2 {
		t.Fatalf("nondeterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			c1, a1, s1, w1, c2, a2, s2, w2)
	}
}
