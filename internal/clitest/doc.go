// Package clitest smoke-tests the repository's command-line binaries
// as real OS processes. It pins the uniform exit-code contract every
// cmd follows — 0 for a successful run, 1 for a runtime failure, 2
// for a usage error (unknown flags, unexpected positional arguments,
// invalid flag combinations) — and the fleet end-to-end oracle: a
// limit-fleet report produced across real worker processes is
// byte-identical to the single-process limit-chaos report, including
// under worker self-chaos.
//
// The package contains only tests; the binaries are built once per
// test run into a temp directory (skipped under -short).
package clitest
