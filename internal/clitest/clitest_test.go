package clitest

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binDir holds the freshly built cmd binaries for the whole run.
var binDir string

func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(runMain(m))
}

func runMain(m *testing.M) int {
	if testing.Short() {
		return m.Run() // every test skips under -short
	}
	dir, err := os.MkdirTemp("", "clitest")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(dir)
	out, err := exec.Command("go", "build", "-o", dir, "limitsim/cmd/...").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clitest: building cmds: %v\n%s", err, out)
		return 1
	}
	binDir = dir
	return m.Run()
}

// run executes one built binary and returns its exit code and stderr.
func run(t *testing.T, name string, args ...string) (int, string) {
	t.Helper()
	if testing.Short() {
		t.Skip("clitest runs real binaries")
	}
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	var errb bytes.Buffer
	cmd.Stderr = &errb
	err := cmd.Run()
	if err == nil {
		return 0, errb.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return ee.ExitCode(), errb.String()
}

// TestExitCodeContract is the table-driven pin of the uniform exit
// discipline: 0 ok, 1 runtime failure, 2 usage error — across every
// binary in cmd/. Usage errors (stray positional arguments, unknown
// flags, invalid combinations) must be cheap: they exit before any
// simulation work starts.
func TestExitCodeContract(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name string
		bin  string
		args []string
		want int
	}{
		// Exit 0: cheap successful invocations.
		{"limitctl bare help", "limitctl", nil, 0},
		{"limit-chaos tiny campaign", "limit-chaos", []string{"-seeds", "1", "-threads", "2", "-cores", "2", "-iters", "20"}, 0},
		{"limit-fleet in-process tiny", "limit-fleet", []string{"-workers", "0", "-seeds", "1", "-threads", "2", "-cores", "2", "-iters", "20"}, 0},

		// Exit 2: stray positional arguments, everywhere.
		{"limit-chaos stray arg", "limit-chaos", []string{"bogus"}, 2},
		{"limit-fleet stray arg", "limit-fleet", []string{"bogus"}, 2},
		{"limit-ablate stray arg", "limit-ablate", []string{"bogus"}, 2},
		{"limit-experiments stray arg", "limit-experiments", []string{"bogus"}, 2},
		{"limit-hw stray arg", "limit-hw", []string{"bogus"}, 2},
		{"limit-overhead stray arg", "limit-overhead", []string{"bogus"}, 2},
		{"limit-profile stray arg", "limit-profile", []string{"bogus"}, 2},
		{"limit-sync stray arg", "limit-sync", []string{"bogus"}, 2},
		{"limitctl unknown subcommand", "limitctl", []string{"bogus"}, 2},

		// Exit 2: unknown flags (the flag package's own discipline)
		// and invalid flag combinations.
		{"limit-chaos unknown flag", "limit-chaos", []string{"-no-such-flag"}, 2},
		{"limit-fleet unknown flag", "limit-fleet", []string{"-no-such-flag"}, 2},
		{"limit-chaos ablate without soak", "limit-chaos", []string{"-ablate-reclaim"}, 2},
		{"limit-chaos unknown mix", "limit-chaos", []string{"-mix", "bogus"}, 2},
		{"limit-chaos unknown tenant mix", "limit-chaos", []string{"-tenants", "3", "-mix", "bogus"}, 2},
		{"limit-chaos unknown soak mix", "limit-chaos", []string{"-soak", "-mix", "bogus"}, 2},
		{"limit-fleet unknown space", "limit-fleet", []string{"-space", "bogus"}, 2},
		{"limit-fleet ablate without soak", "limit-fleet", []string{"-ablate-reclaim"}, 2},
		{"limitctl merge no files", "limitctl", []string{"merge"}, 2},
		{"limitctl merge unknown format", "limitctl", []string{"merge", "-format", "bogus", "x.jsonl"}, 2},
		{"limitctl trace stray arg", "limitctl", []string{"trace", "bogus"}, 2},
		{"limitctl stats stray arg", "limitctl", []string{"stats", "bogus"}, 2},
		{"limitctl metrics stray arg", "limitctl", []string{"metrics", "bogus"}, 2},
		{"limitctl metrics unknown metric", "limitctl", []string{"metrics", "-metric", "bogus"}, 2},
		{"limitctl metrics unknown format", "limitctl", []string{"metrics", "-format", "bogus"}, 2},
		{"limitctl metrics empty selection", "limitctl", []string{"metrics", "-metric", ","}, 2},

		// Exit 1: runtime failures.
		{"limitctl merge missing file", "limitctl", []string{"merge", filepath.Join(tmp, "absent.jsonl")}, 1},
		{"limit-chaos unwritable report", "limit-chaos", []string{"-report", filepath.Join(tmp, "no-such-dir", "r.txt")}, 1},
		{"limit-fleet unwritable report", "limit-fleet", []string{"-report", filepath.Join(tmp, "no-such-dir", "r.txt")}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := run(t, tc.bin, tc.args...)
			if code != tc.want {
				t.Errorf("%s %v: exit %d, want %d\nstderr: %s", tc.bin, tc.args, code, tc.want, stderr)
			}
		})
	}
}

// TestUnknownMixListsAvailable pins the -mix error surface: an unknown
// name must name itself and enumerate the matrix it was matched
// against — the tenant matrix when -tenants is active, the default
// otherwise.
func TestUnknownMixListsAvailable(t *testing.T) {
	code, stderr := run(t, "limit-chaos", "-mix", "bogus")
	if code != 2 {
		t.Fatalf("unknown mix exited %d, want 2\nstderr: %s", code, stderr)
	}
	for _, want := range []string{`unknown mix "bogus"`, "available mixes:", "pmi-storm", "full-mix"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("unknown-mix stderr missing %q:\n%s", want, stderr)
		}
	}

	code, stderr = run(t, "limit-chaos", "-tenants", "3", "-mix", "bogus")
	if code != 2 {
		t.Fatalf("unknown tenant mix exited %d, want 2\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"vcpu-preempt-storm", "tenant-pmi-storm", "tenant-full-mix"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("tenant unknown-mix stderr missing %q:\n%s", want, stderr)
		}
	}
}

// TestUnknownMetricListsBuiltins pins the metrics error surface: an
// unknown -metric name must exit 2 before any simulation runs and
// enumerate the built-in catalogue.
func TestUnknownMetricListsBuiltins(t *testing.T) {
	code, stderr := run(t, "limitctl", "metrics", "-metric", "bogus")
	if code != 2 {
		t.Fatalf("unknown metric exited %d, want 2\nstderr: %s", code, stderr)
	}
	for _, want := range []string{`unknown metric "bogus"`, "cpi", "kernel_share", "tma_backend"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("unknown-metric stderr missing %q:\n%s", want, stderr)
		}
	}
}

// campaignArgs is the shared tiny campaign both engines run for the
// byte-identity oracles: small enough for a test, wide enough (5 mixes
// × 2 seeds = 10 jobs) to shard meaningfully, with telemetry attached
// so merged metrics cross the process boundary too.
var campaignArgs = []string{"-seeds", "2", "-threads", "3", "-cores", "2", "-iters", "60", "-metrics"}

// singleProcessReport runs limit-chaos once and returns its report.
func singleProcessReport(t *testing.T) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "single.txt")
	args := append(append([]string{}, campaignArgs...), "-parallel", "4", "-report", path)
	if code, stderr := run(t, "limit-chaos", args...); code != 0 {
		t.Fatalf("limit-chaos exit %d\nstderr: %s", code, stderr)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFleetReportMatchesSingleProcess is the real-process keystone:
// the limit-fleet report assembled across OS worker processes must be
// byte-identical to limit-chaos's single-process report at every
// shard width.
func TestFleetReportMatchesSingleProcess(t *testing.T) {
	want := singleProcessReport(t)
	for _, workers := range []string{"1", "4"} {
		path := filepath.Join(t.TempDir(), "fleet.txt")
		args := append(append([]string{}, campaignArgs...), "-workers", workers, "-report", path)
		code, stderr := run(t, "limit-fleet", args...)
		if code != 0 {
			t.Fatalf("workers=%s: limit-fleet exit %d\nstderr: %s", workers, code, stderr)
		}
		if !strings.Contains(stderr, "fleet summary") {
			t.Errorf("workers=%s: stderr lacks the fleet summary", workers)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%s: fleet report differs from single-process report\n--- fleet ---\n%s\n--- single ---\n%s",
				workers, got, want)
		}
	}
}

// TestFleetKillStormRealProcesses turns the fleet's self-chaos on with
// real worker processes — SIGKILLed mid-job, stalled past the
// heartbeat deadline, frames truncated — and requires the same
// contract: exit 0 (complete, audit-clean) and a byte-identical
// report.
func TestFleetKillStormRealProcesses(t *testing.T) {
	want := singleProcessReport(t)
	path := filepath.Join(t.TempDir(), "storm.txt")
	args := append(append([]string{}, campaignArgs...),
		"-workers", "4", "-chaos-workers", "-fleet-seed", "11", "-hb-timeout", "1s", "-report", path)
	code, stderr := run(t, "limit-fleet", args...)
	if code != 0 {
		t.Fatalf("kill-storm limit-fleet exit %d\nstderr: %s", code, stderr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("kill-storm fleet report differs from single-process report\n--- fleet ---\n%s\n--- single ---\n%s",
			got, want)
	}
	if !strings.Contains(stderr, "fleet summary") {
		t.Errorf("stderr lacks the fleet summary:\n%s", stderr)
	}
}
