// Package runner is the deterministic parallel execution engine for
// independent simulation runs. Every campaign, soak wave, and
// experiment in this repository is a matrix of runs that share no
// state: each builds its own machine, executes the single-threaded
// discrete-event loop, and produces a result keyed by its position in
// the matrix. The engine fans those runs across a bounded worker pool
// while keeping every byte of downstream output identical to the
// serial engine:
//
//   - Jobs are integer keys 0..Jobs-1, claimed in ascending order from
//     a shared counter. Callers store each job's result in a pre-sized
//     keyed slot (Map does this for them), so the merge order after
//     the pool drains is the key order — canonical regardless of
//     completion order.
//   - Worker indexes are stable and dense (0..Workers()-1), so callers
//     can pool expensive per-run artifacts (built workloads, telemetry
//     registries, invariant checkers) per worker instead of
//     reallocating them per run: a worker executes one job at a time,
//     never concurrently with itself.
//   - The first job error cancels all jobs not yet claimed; jobs
//     already running complete. Because keys are claimed in ascending
//     order and job functions are deterministic, the lowest-keyed
//     error is the same error the serial engine would have returned,
//     and Run returns exactly that one.
//
// Parallel == 1 bypasses the pool entirely — no goroutines, no
// channels — and is byte-for-byte today's serial path. Parallel <= 0
// uses GOMAXPROCS.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Config shapes one pool invocation.
type Config struct {
	// Jobs is the total job count; keys are 0..Jobs-1.
	Jobs int
	// Parallel is the requested worker count: 1 runs serially inline,
	// <= 0 uses GOMAXPROCS, anything else is clamped to Jobs.
	Parallel int
}

// Workers resolves the effective worker count: Parallel with defaults
// applied, clamped to [1, Jobs]. Callers sizing per-worker artifact
// pools should use this, not Parallel.
func (c Config) Workers() int {
	p := c.Parallel
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > c.Jobs {
		p = c.Jobs
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Claimer hands out job keys to workers. Claim returns the next job
// key and true, or false when the job space is exhausted. The runner's
// own claimer is Sequence; it is an interface so engines layered on
// the pool (the fleet coordinator's retry queue, most notably) can
// substitute richer claim policies while reusing the worker shape.
type Claimer interface {
	Claim() (job int, ok bool)
}

// Sequence is the runner's claim source: job keys 0..n-1 handed out in
// ascending order from a shared atomic counter. Safe for concurrent
// claims; the ascending order is what makes the pool's lowest-keyed
// error match the serial engine's first failure.
type Sequence struct {
	next atomic.Int64
	n    int64
}

// NewSequence returns a claimer over keys 0..n-1.
func NewSequence(n int) *Sequence {
	return &Sequence{n: int64(n)}
}

// Claim returns the next unclaimed key in ascending order.
func (s *Sequence) Claim() (int, bool) {
	j := s.next.Add(1) - 1
	if j >= s.n {
		return 0, false
	}
	return int(j), true
}

// PanicError is a panic recovered from a job function, converted into
// an ordinary job error: the pool must never lose a whole campaign's
// results (or crash the coordinating process) because one run's
// simulation hit a bug. It carries the job key and the goroutine stack
// at the panic site, and is returned by Run/Map under the same
// lowest-keyed rule as any other job error.
type PanicError struct {
	// Job is the job key whose function panicked.
	Job int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Job, e.Value)
}

// call runs fn(job, worker), converting a panic into a *PanicError.
func call(fn func(job, worker int) error, job, worker int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Job: job, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(job, worker)
}

// Run executes fn(job, worker) for every job key. The worker index
// identifies which pool slot is calling (always 0 when serial), so fn
// may freely mutate per-worker state indexed by it. The first error
// cancels every job not yet claimed and is returned; it is always the
// lowest-keyed error, which is the error the serial loop would have
// stopped on. A panic inside fn is recovered into a *PanicError
// carrying the job key and stack, and follows the same rule.
func Run(cfg Config, fn func(job, worker int) error) error {
	n := cfg.Jobs
	if n <= 0 {
		return nil
	}
	if cfg.Workers() == 1 {
		for j := 0; j < n; j++ {
			if err := call(fn, j, 0); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	claims := NewSequence(n)
	// One slot per job: workers write disjoint elements, no locking.
	errs := make([]error, n)
	for w := 0; w < cfg.Workers(); w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				j, ok := claims.Claim()
				if !ok || stop.Load() {
					return
				}
				if err := call(fn, j, worker); err != nil {
					errs[j] = err
					stop.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	// Keys below the lowest error were claimed earlier and completed
	// without error (fn is deterministic), so this matches the serial
	// engine's first failure.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn for every job key and collects the results in a keyed
// slice: out[j] is job j's value, in key order regardless of which
// worker produced it or when. Jobs cancelled by an earlier error leave
// their slot at the zero value, and the error returned follows Run's
// lowest-key rule.
func Map[T any](cfg Config, fn func(job, worker int) (T, error)) ([]T, error) {
	out := make([]T, cfg.Jobs)
	err := Run(cfg, func(j, w int) error {
		v, err := fn(j, w)
		if err != nil {
			return err
		}
		out[j] = v
		return nil
	})
	return out, err
}
