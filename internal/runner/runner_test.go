package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		jobs, parallel, min, max int
	}{
		{10, 1, 1, 1},
		{10, 4, 4, 4},
		{2, 8, 2, 2},   // clamped to jobs
		{10, 0, 1, 10}, // GOMAXPROCS, whatever it is, clamped to jobs
		{0, 4, 1, 1},
	}
	for _, c := range cases {
		got := Config{Jobs: c.jobs, Parallel: c.parallel}.Workers()
		if got < c.min || got > c.max {
			t.Errorf("Workers(jobs=%d, parallel=%d) = %d, want in [%d,%d]",
				c.jobs, c.parallel, got, c.min, c.max)
		}
	}
}

// TestMapKeyedSlots checks that results land at their job key for every
// pool width, identical to the serial engine's output.
func TestMapKeyedSlots(t *testing.T) {
	const jobs = 64
	want := make([]int, jobs)
	for j := range want {
		want[j] = j * j
	}
	for _, parallel := range []int{1, 2, 4, 8, 0} {
		got, err := Map(Config{Jobs: jobs, Parallel: parallel}, func(j, w int) (int, error) {
			return j * j, nil
		})
		if err != nil {
			t.Fatalf("parallel %d: %v", parallel, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("parallel %d: slot %d = %d, want %d", parallel, j, got[j], want[j])
			}
		}
	}
}

// TestEveryJobRunsOnce counts invocations per key under contention.
func TestEveryJobRunsOnce(t *testing.T) {
	const jobs = 200
	var counts [jobs]atomic.Int64
	err := Run(Config{Jobs: jobs, Parallel: 8}, func(j, w int) error {
		counts[j].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := range counts {
		if n := counts[j].Load(); n != 1 {
			t.Errorf("job %d ran %d times", j, n)
		}
	}
}

// TestWorkerIndexBounds verifies worker indexes stay dense within
// Workers(), the contract per-worker artifact pools rely on.
func TestWorkerIndexBounds(t *testing.T) {
	cfg := Config{Jobs: 100, Parallel: 5}
	limit := cfg.Workers()
	var bad atomic.Int64
	err := Run(cfg, func(j, w int) error {
		if w < 0 || w >= limit {
			bad.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Errorf("%d job(s) saw a worker index outside [0,%d)", bad.Load(), limit)
	}
}

// TestErrorIsLowestKeyed makes the error rule concrete: whichever
// worker fails first, the returned error is the lowest failing key's —
// exactly what the serial loop returns.
func TestErrorIsLowestKeyed(t *testing.T) {
	fail := map[int]bool{7: true, 23: true, 61: true}
	for _, parallel := range []int{1, 2, 8} {
		err := Run(Config{Jobs: 64, Parallel: parallel}, func(j, w int) error {
			if fail[j] {
				return fmt.Errorf("job %d failed", j)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Errorf("parallel %d: err = %v, want job 7's", parallel, err)
		}
	}
}

// TestCancellationSkipsQueuedJobs: after the first error, jobs not yet
// claimed must never start.
func TestCancellationSkipsQueuedJobs(t *testing.T) {
	const jobs = 10_000
	var ran atomic.Int64
	boom := errors.New("boom")
	err := Run(Config{Jobs: jobs, Parallel: 4}, func(j, w int) error {
		ran.Add(1)
		if j == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= jobs {
		t.Errorf("all %d jobs ran despite an early error", n)
	} else {
		t.Logf("ran %d of %d jobs before cancellation", n, jobs)
	}
}

// TestSerialStopsAtFirstError pins the Parallel==1 inline path.
func TestSerialStopsAtFirstError(t *testing.T) {
	var ran int
	err := Run(Config{Jobs: 100, Parallel: 1}, func(j, w int) error {
		ran++
		if j == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Errorf("serial path ran %d jobs (err %v), want exactly 4", ran, err)
	}
}

// TestPanicBecomesTypedError: a panicking job must surface as a
// *PanicError carrying the job key and stack instead of crashing the
// process, on both the serial and pooled paths, and it obeys the
// lowest-keyed rule like any other job error.
func TestPanicBecomesTypedError(t *testing.T) {
	for _, parallel := range []int{1, 2, 8} {
		err := Run(Config{Jobs: 64, Parallel: parallel}, func(j, w int) error {
			if j == 9 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallel %d: err = %v (%T), want *PanicError", parallel, err, err)
		}
		if pe.Job != 9 {
			t.Errorf("parallel %d: PanicError.Job = %d, want 9", parallel, pe.Job)
		}
		if pe.Value != "kaboom" {
			t.Errorf("parallel %d: PanicError.Value = %v, want kaboom", parallel, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("parallel %d: PanicError.Stack is empty", parallel)
		}
		if want := "runner: job 9 panicked: kaboom"; pe.Error() != want {
			t.Errorf("parallel %d: Error() = %q, want %q", parallel, pe.Error(), want)
		}
	}
}

// TestPanicLowestKeyedVsError: a panic competes with ordinary errors
// under the same lowest-key rule.
func TestPanicLowestKeyedVsError(t *testing.T) {
	err := Run(Config{Jobs: 64, Parallel: 1}, func(j, w int) error {
		switch j {
		case 3:
			panic("first")
		case 7:
			return errors.New("later")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Job != 3 {
		t.Fatalf("err = %v, want job 3's *PanicError", err)
	}
}

// TestSequenceClaimsAscendingOnce: the extracted claimer hands out each
// key exactly once, in ascending order from a single goroutine.
func TestSequenceClaimsAscendingOnce(t *testing.T) {
	s := NewSequence(5)
	for want := 0; want < 5; want++ {
		j, ok := s.Claim()
		if !ok || j != want {
			t.Fatalf("Claim() = %d,%v, want %d,true", j, ok, want)
		}
	}
	if _, ok := s.Claim(); ok {
		t.Error("Claim() after exhaustion returned ok")
	}
}

func TestZeroJobs(t *testing.T) {
	called := false
	if err := Run(Config{Jobs: 0, Parallel: 4}, func(j, w int) error {
		called = true
		return nil
	}); err != nil || called {
		t.Errorf("zero jobs: err=%v called=%v", err, called)
	}
}
