package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"limitsim/internal/faultinject"
	"limitsim/internal/invariant"
	"limitsim/internal/kernel"
	"limitsim/internal/telemetry"
	"limitsim/internal/workloads"
)

// Fleet adapters: the campaign and soak matrices exposed as shardable
// job spaces. A job is one seeded run — a pure function of (defaulted
// config, key) — whose outcome is serialized to a deterministic JSON
// payload, so runs can execute on any worker process, be retried or
// speculatively duplicated, and still assemble into a Result that is
// byte-identical to what Run/RunSoak produce in one process. The
// telemetry block rides along as a JSONL string per run; telemetry
// merges are commutative sums, so merging per-run registries in key
// order here equals merging per-worker aggregates in worker order
// there.

// outcomeWire is runOutcome in wire form.
type outcomeWire struct {
	Err               string                `json:"err,omitempty"`
	Injected          faultinject.Stats     `json:"injected"`
	Rewinds           uint64                `json:"rewinds"`
	Folds             uint64                `json:"folds"`
	CtxSwitches       uint64                `json:"ctx_switches"`
	Migrations        uint64                `json:"migrations"`
	ReadsCompleted    uint64                `json:"reads_completed"`
	TornDeltas        uint64                `json:"torn_deltas"`
	CheckerViolations int                   `json:"checker_violations"`
	Samples           []invariant.Violation `json:"samples,omitempty"`
	Telemetry         string                `json:"telemetry,omitempty"`
}

func (w *outcomeWire) from(o *runOutcome) {
	w.Err = o.errMsg
	w.Injected = o.injected
	w.Rewinds = o.rewinds
	w.Folds = o.folds
	w.CtxSwitches = o.ctxSwitches
	w.Migrations = o.migrations
	w.ReadsCompleted = o.readsCompleted
	w.TornDeltas = o.tornDeltas
	w.CheckerViolations = o.checkerViolations
	w.Samples = o.samples
}

func (w *outcomeWire) outcome() runOutcome {
	return runOutcome{
		errMsg:            w.Err,
		injected:          w.Injected,
		rewinds:           w.Rewinds,
		folds:             w.Folds,
		ctxSwitches:       w.CtxSwitches,
		migrations:        w.Migrations,
		readsCompleted:    w.ReadsCompleted,
		tornDeltas:        w.TornDeltas,
		checkerViolations: w.CheckerViolations,
		samples:           w.Samples,
	}
}

// soakOutcomeWire is soakOutcome in wire form.
type soakOutcomeWire struct {
	Err               string                `json:"err,omitempty"`
	Injected          faultinject.Stats     `json:"injected"`
	Clones            uint64                `json:"clones"`
	Exits             uint64                `json:"exits"`
	Kills             uint64                `json:"kills"`
	Denials           uint64                `json:"denials"`
	DegradedRuns      uint64                `json:"degraded_runs"`
	CompletedRuns     uint64                `json:"completed_runs"`
	PartialRuns       uint64                `json:"partial_runs"`
	Waves             []WaveAcct            `json:"waves"`
	Folds             uint64                `json:"folds"`
	Rewinds           uint64                `json:"rewinds"`
	ReadsCompleted    uint64                `json:"reads_completed"`
	TornDeltas        uint64                `json:"torn_deltas"`
	BadConservation   uint64                `json:"bad_conservation"`
	Leaks             int                   `json:"leaks"`
	CheckerViolations int                   `json:"checker_violations"`
	Samples           []invariant.Violation `json:"samples,omitempty"`
	Telemetry         string                `json:"telemetry,omitempty"`
}

func (w *soakOutcomeWire) from(o *soakOutcome) {
	w.Err = o.errMsg
	w.Injected = o.injected
	w.Clones = o.clones
	w.Exits = o.exits
	w.Kills = o.kills
	w.Denials = o.denials
	w.DegradedRuns = o.degradedRuns
	w.CompletedRuns = o.completedRuns
	w.PartialRuns = o.partialRuns
	w.Waves = o.waves
	w.Folds = o.folds
	w.Rewinds = o.rewinds
	w.ReadsCompleted = o.readsCompleted
	w.TornDeltas = o.tornDeltas
	w.BadConservation = o.badConservation
	w.Leaks = o.leaks
	w.CheckerViolations = o.checkerViolations
	w.Samples = o.samples
}

func (w *soakOutcomeWire) outcome() soakOutcome {
	return soakOutcome{
		errMsg:            w.Err,
		injected:          w.Injected,
		clones:            w.Clones,
		exits:             w.Exits,
		kills:             w.Kills,
		denials:           w.Denials,
		degradedRuns:      w.DegradedRuns,
		completedRuns:     w.CompletedRuns,
		partialRuns:       w.PartialRuns,
		waves:             w.Waves,
		folds:             w.Folds,
		rewinds:           w.Rewinds,
		readsCompleted:    w.ReadsCompleted,
		tornDeltas:        w.TornDeltas,
		badConservation:   w.BadConservation,
		leaks:             w.Leaks,
		checkerViolations: w.CheckerViolations,
		samples:           w.Samples,
	}
}

// workerPool lazily builds one pooled artifact set per worker index.
// The fleet contract says a given worker index never runs two jobs
// concurrently, but different indices do, so the map itself is locked.
type workerPool[W any] struct {
	mu      sync.Mutex
	build   func() W
	workers map[int]W
}

func (p *workerPool[W]) get(wi int) W {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.workers == nil {
		p.workers = map[int]W{}
	}
	ws, ok := p.workers[wi]
	if !ok {
		ws = p.build()
		p.workers[wi] = ws
	}
	return ws
}

// CampaignSpace is the read-path campaign as a shardable job space:
// one job per (mix, seed) cell, keyed mix-major exactly like Run's
// runner jobs.
type CampaignSpace struct {
	cfg  Config
	pool workerPool[*campaignWorker]
}

// NewCampaignSpace builds the space over the defaulted config.
func NewCampaignSpace(cfg Config) *CampaignSpace {
	cfg = cfg.withDefaults()
	s := &CampaignSpace{cfg: cfg}
	s.pool.build = func() *campaignWorker { return newCampaignWorker(cfg) }
	return s
}

// Config returns the defaulted campaign config the space runs.
func (s *CampaignSpace) Config() Config { return s.cfg }

// NumJobs is mixes × seeds.
func (s *CampaignSpace) NumJobs() int { return len(s.cfg.Mixes) * s.cfg.Seeds }

// Run executes the (mix, seed) cell job names and returns its outcome
// payload. Deterministic: two executions of the same key produce the
// same bytes regardless of worker or attempt.
func (s *CampaignSpace) Run(job, worker int) ([]byte, error) {
	if job < 0 || job >= s.NumJobs() {
		return nil, fmt.Errorf("chaos: campaign job %d outside space [0,%d)", job, s.NumJobs())
	}
	ws := s.pool.get(worker)
	mi, sd := job/s.cfg.Seeds, job%s.cfg.Seeds
	var out runOutcome
	runOne(s.cfg, s.cfg.Mixes[mi], RunSeed(mi, sd), ws, &out)
	var w outcomeWire
	w.from(&out)
	if ws.reg != nil {
		// ws.reg still holds this run's values; it is Reset at the start
		// of the worker's next run, not after this one.
		var buf bytes.Buffer
		if err := ws.reg.WriteJSONL(&buf); err != nil {
			return nil, err
		}
		w.Telemetry = buf.String()
	}
	return json.Marshal(&w)
}

// AssembleCampaign rebuilds a campaign Result from the space's keyed
// payloads. The folds happen in (mix, seed) key order — the same order
// Run folds its outcome slots — so the rendered report is
// byte-identical to a single-process campaign's.
func AssembleCampaign(cfg Config, payloads [][]byte) (*Result, error) {
	cfg = cfg.withDefaults()
	want := len(cfg.Mixes) * cfg.Seeds
	if len(payloads) != want {
		return nil, fmt.Errorf("chaos: assemble: %d payload(s) for a %d-job campaign", len(payloads), want)
	}
	res := &Result{Cfg: cfg, Want: buildWorkload(cfg).want}
	if cfg.Metrics {
		res.Telemetry = telemetry.NewRegistry()
		kernel.NewMetrics(res.Telemetry)
	}
	for mi := range cfg.Mixes {
		mr := MixResult{Name: cfg.Mixes[mi].Name}
		for sd := 0; sd < cfg.Seeds; sd++ {
			j := mi*cfg.Seeds + sd
			var w outcomeWire
			if err := decodeOutcome(payloads[j], j, &w); err != nil {
				return nil, err
			}
			out := w.outcome()
			out.foldInto(&mr)
			if err := mergeWireTelemetry(res.Telemetry, w.Telemetry, j); err != nil {
				return nil, err
			}
		}
		res.Mixes = append(res.Mixes, mr)
	}
	return res, nil
}

// SoakSpace is the lifecycle soak campaign as a shardable job space:
// one job per (mix, seed) cell, keyed mix-major with the same RunSeed
// derivation RunSoak uses.
type SoakSpace struct {
	cfg  SoakConfig
	pool workerPool[*soakWorker]
}

// NewSoakSpace builds the space over the defaulted config.
func NewSoakSpace(cfg SoakConfig) *SoakSpace {
	cfg = cfg.withDefaults()
	s := &SoakSpace{cfg: cfg}
	s.pool.build = func() *soakWorker { return newSoakWorker(cfg) }
	return s
}

// Config returns the defaulted soak config the space runs.
func (s *SoakSpace) Config() SoakConfig { return s.cfg }

// NumJobs is mixes × seeds.
func (s *SoakSpace) NumJobs() int { return len(s.cfg.Mixes) * s.cfg.Seeds }

// Run executes the (mix, seed) soak cell and returns its outcome
// payload.
func (s *SoakSpace) Run(job, worker int) ([]byte, error) {
	if job < 0 || job >= s.NumJobs() {
		return nil, fmt.Errorf("chaos: soak job %d outside space [0,%d)", job, s.NumJobs())
	}
	ws := s.pool.get(worker)
	mi, sd := job/s.cfg.Seeds, job%s.cfg.Seeds
	var out soakOutcome
	runOneSoak(s.cfg, s.cfg.Mixes[mi], RunSeed(mi, sd), ws, &out)
	var w soakOutcomeWire
	w.from(&out)
	if ws.reg != nil {
		var buf bytes.Buffer
		if err := ws.reg.WriteJSONL(&buf); err != nil {
			return nil, err
		}
		w.Telemetry = buf.String()
	}
	return json.Marshal(&w)
}

// AssembleSoak rebuilds a SoakResult from the space's keyed payloads,
// byte-identical to RunSoak's for the same config.
func AssembleSoak(cfg SoakConfig, payloads [][]byte) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	want := len(cfg.Mixes) * cfg.Seeds
	if len(payloads) != want {
		return nil, fmt.Errorf("chaos: assemble: %d payload(s) for a %d-job soak", len(payloads), want)
	}
	res := &SoakResult{Cfg: cfg, Want: workloadsChurnWant(cfg)}
	if cfg.Metrics {
		res.Telemetry = telemetry.NewRegistry()
		kernel.NewMetrics(res.Telemetry)
	}
	for mi := range cfg.Mixes {
		mr := SoakMixResult{Name: cfg.Mixes[mi].Name, Waves: make([]WaveAcct, cfg.Waves)}
		for sd := 0; sd < cfg.Seeds; sd++ {
			j := mi*cfg.Seeds + sd
			var w soakOutcomeWire
			if err := decodeOutcome(payloads[j], j, &w); err != nil {
				return nil, err
			}
			out := w.outcome()
			out.foldInto(&mr)
			if err := mergeWireTelemetry(res.Telemetry, w.Telemetry, j); err != nil {
				return nil, err
			}
		}
		res.Mixes = append(res.Mixes, mr)
	}
	return res, nil
}

// workloadsChurnWant derives the soak value-oracle target the same way
// RunSoak does: from a built churn workload.
func workloadsChurnWant(cfg SoakConfig) uint64 {
	return workloads.BuildChurn(cfg.churn()).Want
}

func decodeOutcome(payload []byte, job int, into any) error {
	if payload == nil {
		return fmt.Errorf("chaos: assemble: job %d has no payload", job)
	}
	if err := json.Unmarshal(payload, into); err != nil {
		return fmt.Errorf("chaos: assemble: job %d payload: %w", job, err)
	}
	return nil
}

// mergeWireTelemetry folds one run's JSONL telemetry block into the
// campaign registry. Schema drift between runs is a hard error: two
// runs of the same config must expose the same metrics.
func mergeWireTelemetry(agg *telemetry.Registry, block string, job int) error {
	if agg == nil {
		return nil
	}
	if block == "" {
		return fmt.Errorf("chaos: assemble: job %d payload is missing its telemetry block", job)
	}
	reg, err := telemetry.ParseJSONL(strings.NewReader(block))
	if err != nil {
		return fmt.Errorf("chaos: assemble: job %d telemetry: %w", job, err)
	}
	if err := agg.Merge(reg); err != nil {
		return fmt.Errorf("chaos: assemble: job %d telemetry: %w", job, err)
	}
	return nil
}
