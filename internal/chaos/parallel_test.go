package chaos

import (
	"strings"
	"testing"
)

// renderCampaign runs a small but non-trivial campaign at the given
// pool width and returns the full rendered report, telemetry included.
func renderCampaign(t *testing.T, parallel int) string {
	t.Helper()
	res := Run(Config{
		Seeds:    3,
		Threads:  4,
		Iters:    120,
		Metrics:  true,
		Parallel: parallel,
	})
	var sb strings.Builder
	res.Render(&sb)
	return sb.String()
}

// TestCampaignParallelDeterminism is the engine's core contract: the
// campaign report — mix table, violation details, run errors and the
// merged telemetry block — must be byte-identical at every pool width,
// because outcomes land in (mix, seed)-keyed slots and fold in key
// order regardless of completion order. Run under -race this also
// vets the worker pool for data races.
func TestCampaignParallelDeterminism(t *testing.T) {
	serial := renderCampaign(t, 1)
	for _, par := range []int{2, 4, 8} {
		if got := renderCampaign(t, par); got != serial {
			t.Errorf("parallel=%d report differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				par, serial, got)
		}
	}
}

// TestCampaignParallelDeterminismNoFixup repeats the byte-equality
// check on the ablated campaign, where runs actually report torn reads
// — the violation-sample section must also assemble identically.
func TestCampaignParallelDeterminismNoFixup(t *testing.T) {
	render := func(parallel int) string {
		res := Run(Config{
			Seeds:    2,
			Threads:  4,
			Iters:    120,
			NoFixup:  true,
			Parallel: parallel,
			Mixes: []Mix{
				{Name: "pmi-storm", Inject: DefaultMixes()[2].Inject},
			},
		})
		var sb strings.Builder
		res.Render(&sb)
		return sb.String()
	}
	serial := render(1)
	if render(4) != serial {
		t.Error("ablated campaign report differs between serial and parallel=4")
	}
	if !strings.Contains(serial, "torn") {
		t.Error("ablated campaign rendered no torn-read evidence")
	}
}

// TestSoakParallelDeterminism is the same contract for the lifecycle
// engine: seeds fan out within each mix, yet the soak report (wave
// accounting and telemetry included) must match the serial engine
// byte for byte.
func TestSoakParallelDeterminism(t *testing.T) {
	render := func(parallel int) string {
		res := RunSoak(SoakConfig{
			Seeds:    2,
			Waves:    3,
			Iters:    30,
			Metrics:  true,
			Parallel: parallel,
		})
		var sb strings.Builder
		res.Render(&sb)
		return sb.String()
	}
	serial := render(1)
	for _, par := range []int{2, 4} {
		if got := render(par); got != serial {
			t.Errorf("soak parallel=%d report differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				par, serial, got)
		}
	}
}

// TestCampaignWorkerReuseClean pins the pooling contract directly: one
// worker running the same seed twice in a row (with arbitrary runs in
// between) must produce identical outcomes — Restore/Reset leave no
// residue.
func TestCampaignWorkerReuseClean(t *testing.T) {
	cfg := Config{Seeds: 1, Threads: 4, Iters: 120}.withDefaults()
	ws := newCampaignWorker(cfg)
	mix := DefaultMixes()[4] // full-mix: exercises every injector path

	var first, again runOutcome
	runOne(cfg, mix, RunSeed(4, 0), ws, &first)
	var noise runOutcome
	runOne(cfg, DefaultMixes()[2], RunSeed(2, 7), ws, &noise)
	runOne(cfg, mix, RunSeed(4, 0), ws, &again)

	var a, b MixResult
	first.foldInto(&a)
	again.foldInto(&b)
	if a.Injected != b.Injected || a.Folds != b.Folds || a.Rewinds != b.Rewinds ||
		a.ReadsCompleted != b.ReadsCompleted || a.TornDeltas != b.TornDeltas ||
		a.CheckerViolations != b.CheckerViolations || a.RunErrors != b.RunErrors {
		t.Errorf("worker reuse changed a run's outcome:\nfirst: %+v\nagain: %+v", a, b)
	}
}
