package chaos

// splitmix64 is the canonical SplitMix64 finalizer (Steele et al.,
// also java.util.SplittableRandom): a bijective avalanche over uint64,
// every output bit depending on every input bit.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunSeed derives the kernel seed for seed-index s of mix mi, shared
// by the campaign and soak engines. The earlier derivation
// (s*0x9e3779b97f4a7c15 + mi + 1) was affine in both coordinates:
// neighbouring mixes at the same seed index differed by exactly 1, so
// every downstream stream that xors or offsets the seed (injector RNG,
// spawn seeds) ran laterally correlated across the matrix, and any two
// (mi, s) pairs on the same diagonal collided outright. Chaining two
// SplitMix64 steps — one to spread the mix index, one to fold in the
// seed index — gives every cell of the matrix an independent-looking
// 64-bit stream with no aliasing (see TestRunSeedNoCollisions).
func RunSeed(mi, s int) uint64 {
	return splitmix64(splitmix64(uint64(mi)+1) + uint64(s))
}
