package chaos

import (
	"strings"
	"testing"

	"limitsim/internal/faultinject"
	"limitsim/internal/invariant"
)

// quickSoakCfg keeps soak tests fast while still churning every wave
// and exercising every mix class; the fault rates are hotter than the
// campaign defaults so short runs reliably inject.
func quickSoakCfg() SoakConfig {
	pool := 3
	return SoakConfig{
		Seeds:      2,
		Pool:       pool,
		Waves:      3,
		Iters:      30,
		ComputeK:   20,
		Cores:      2,
		WriteWidth: 11,
		Mixes: []SoakMix{
			{Name: "churn-only"},
			{Name: "preempt-churn", Inject: faultinject.Config{
				PreemptInRegions: true, PreemptEvery: 499,
			}},
			{Name: "kill-storm", Inject: faultinject.Config{
				KillEvery: 3001, KillClonesOnly: true,
			}},
			{Name: "clone-storm", Inject: faultinject.Config{
				CloneEvery: 2003, CloneBudget: 24,
			}},
			{Name: "slot-burst", SlotCapacity: 2 * pool, Inject: faultinject.Config{
				CloneEvery: 2003, CloneBudget: 16,
			}},
			{Name: "mgr-fallback", SlotCapacity: 1},
			{Name: "full-churn", Inject: faultinject.Config{
				PreemptInRegions: true, PreemptEvery: 499,
				KillEvery: 3001, KillClonesOnly: true,
				CloneEvery: 2003, CloneBudget: 24,
			}},
		},
	}
}

// TestSoakDeterminism runs the identical soak campaign twice and
// requires byte-identical rendered output — same seeds, same churn,
// same kills and clone storms, same report.
func TestSoakDeterminism(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		RunSoak(quickSoakCfg()).Render(&sb)
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("same config produced different soak output:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestSoakInvariantsHold runs the full lifecycle matrix with fixup and
// reclamation active: thread churn, kills, clone storms and slot
// exhaustion must all be absorbed with zero violations — every exact
// measurement right, every inherited counter conserved, every resource
// returned, every degradation flagged.
func TestSoakInvariantsHold(t *testing.T) {
	r := RunSoak(quickSoakCfg())
	if errs := r.TotalRunErrors(); errs != 0 {
		for _, m := range r.Mixes {
			for _, e := range m.Errs {
				t.Logf("[%s] %s", m.Name, e)
			}
		}
		t.Fatalf("%d run(s) failed", errs)
	}
	if v := r.TotalViolations(); v != 0 {
		var sb strings.Builder
		r.Render(&sb)
		t.Fatalf("%d violation(s) with fixup and reclamation enabled:\n%s", v, sb.String())
	}

	var clones, kills, forced, denials, degraded, reads, folds uint64
	for i := range r.Mixes {
		m := &r.Mixes[i]
		clones += m.Clones
		kills += m.Kills
		forced += m.Injected.ForcedClones
		denials += m.Denials
		degraded += m.DegradedRuns
		reads += m.ReadsCompleted
		folds += m.Folds
	}
	if clones == 0 {
		t.Error("soak cloned no threads")
	}
	if kills == 0 {
		t.Error("kill storm delivered no kills")
	}
	if forced == 0 {
		t.Error("clone storm forced no clones")
	}
	if denials == 0 {
		t.Error("tight slot capacities produced no denials")
	}
	if degraded == 0 {
		t.Error("exhaustion produced no flagged degraded runs")
	}
	if reads == 0 {
		t.Error("soak completed no reads")
	}
	if folds == 0 {
		t.Error("narrowed counters produced no overflow folds")
	}

	// The starved-manager mix must flag every one of its worker runs.
	for i := range r.Mixes {
		m := &r.Mixes[i]
		if m.Name != "mgr-fallback" {
			continue
		}
		if want := uint64(m.Runs * r.Cfg.Waves * r.Cfg.Pool); m.DegradedRuns != want {
			t.Errorf("mgr-fallback flagged %d/%d runs", m.DegradedRuns, want)
		}
	}
}

// TestSoakDetectsTornReadsWithoutFixup disables fixup registration:
// the churning campaign must *detect* the resulting torn reads as
// counted violations, not panic and not stay silent.
func TestSoakDetectsTornReadsWithoutFixup(t *testing.T) {
	cfg := quickSoakCfg()
	cfg.Seeds = 2
	// Long worker runs at the narrowest width give every worker several
	// overflow crossings; delaying each PMI a few boundaries slides the
	// fold into the unprotected read sequence. (No preemption here — a
	// preempt storm would drain the withheld PMIs at deschedule before
	// they can expire inside a read window.)
	cfg.Iters = 200
	cfg.WriteWidth = 10
	cfg.NoFixup = true
	cfg.Mixes = []SoakMix{
		{Name: "pmi-churn", Inject: faultinject.Config{
			SpuriousPMIEvery: 211, DelayPMI: true, DelayBoundaries: 3,
		}},
	}
	r := RunSoak(cfg)
	if errs := r.TotalRunErrors(); errs != 0 {
		t.Fatalf("%d run(s) failed; detection must be graceful", errs)
	}
	if r.TotalViolations() == 0 {
		t.Fatal("fixup disabled but the soak detected no torn reads")
	}
}

// TestSoakDetectsReclaimAblation disables exit-time reclamation: the
// leak oracle must report the stranded slots/words/regions and the
// bad-reap oracle the unreleased counters — detection, not a crash.
func TestSoakDetectsReclaimAblation(t *testing.T) {
	cfg := quickSoakCfg()
	cfg.Seeds = 1
	cfg.AblateReclaim = true
	cfg.Mixes = []SoakMix{{Name: "churn-only"}}
	r := RunSoak(cfg)
	if errs := r.TotalRunErrors(); errs != 0 {
		t.Fatalf("%d run(s) failed; detection must be graceful", errs)
	}
	if r.TotalViolations() == 0 {
		t.Fatal("reclamation disabled but no leaks detected")
	}
	if r.Mixes[0].Leaks == 0 {
		t.Error("no resource-leak reports from the end-of-run audit")
	}
	kinds := map[string]bool{}
	for _, v := range r.Mixes[0].Samples {
		kinds[v.Kind] = true
	}
	if !kinds[invariant.KindBadReap] {
		t.Errorf("no bad-reap violations sampled; kinds seen: %v", kinds)
	}
}

// TestSoakRenderShape pins the soak report's user-visible surface.
func TestSoakRenderShape(t *testing.T) {
	cfg := quickSoakCfg()
	cfg.Seeds = 1
	var sb strings.Builder
	RunSoak(cfg).Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Soak campaign", "fixup enabled", "reclaim enabled",
		"churn-only", "kill-storm", "clone-storm", "slot-burst", "mgr-fallback", "full-churn",
		"denials", "degraded", "conserve", "violations",
		"Per-wave accounting",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}
