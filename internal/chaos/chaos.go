// Package chaos runs seeded fault-injection campaigns against the
// LiMiT read path: N seeds × a matrix of fault mixes, every run
// carrying the faultinject injector and the invariant checker. A
// campaign is the executable form of the paper's atomicity claim —
// under forced preemption at every read boundary, spurious/delayed
// overflow interrupts, migration storms, flush storms and narrowed
// counter widths, the measured per-region deltas must stay exact and
// the invariant checker must stay silent. Disable fixup registration
// (the ablation) and the same campaign reports the torn reads instead
// of panicking.
//
// The campaign workload is a multi-threaded read loop: each thread
// owns a LiMiT instruction counter and repeatedly measures a
// fixed-size compute region with the stock rdpmc+load+add sequence,
// storing every measured delta. Because the region's true cost is
// known statically (K compute instructions + the read sequence
// itself), every stored delta is its own oracle: a fold landing inside
// an unrewound read shifts the delta by a full write-limit chunk,
// orders of magnitude beyond the re-execution slack.
package chaos

import (
	"fmt"
	"io"

	"limitsim/internal/faultinject"
	"limitsim/internal/invariant"
	"limitsim/internal/isa"
	"limitsim/internal/kernel"
	"limitsim/internal/limit"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/runner"
	"limitsim/internal/tabwrite"
	"limitsim/internal/telemetry"
)

// Mix names one fault-injection configuration of the campaign matrix.
type Mix struct {
	Name   string
	Inject faultinject.Config // Seed is overridden per run
}

// DefaultMixes returns the standard campaign matrix, from a clean
// baseline to the full storm. Rates use primes so no fault class can
// phase-lock with the workload's loop period.
func DefaultMixes() []Mix {
	return []Mix{
		{Name: "baseline", Inject: faultinject.Config{}},
		{Name: "preempt-storm", Inject: faultinject.Config{
			PreemptInRegions: true, PreemptEvery: 997,
		}},
		{Name: "pmi-storm", Inject: faultinject.Config{
			SpuriousPMIEvery: 211, DelayPMI: true, DelayBoundaries: 3,
		}},
		{Name: "migrate+flush", Inject: faultinject.Config{
			MigrationStorm: true, FlushEvery: 499,
		}},
		{Name: "full-mix", Inject: faultinject.Config{
			PreemptInRegions: true, PreemptEvery: 997,
			SpuriousPMIEvery: 211, DelayPMI: true, DelayBoundaries: 3,
			MigrationStorm: true, FlushEvery: 499,
			SignalDelayBoundaries: 5,
		}},
	}
}

// TenantMixes returns the multi-tenant campaign matrix: vCPU
// preemption storms at read-region boundaries, cross-tenant migration
// pressure, and the combined storm at both scheduling levels. The
// baseline still exercises the double context switch — tenant-quantum
// rotation alone forces vCPU switches — it just adds no injected
// faults on top.
func TenantMixes() []Mix {
	return []Mix{
		{Name: "tenant-baseline", Inject: faultinject.Config{}},
		{Name: "vcpu-preempt-storm", Inject: faultinject.Config{
			VCpuPreemptInRegions: true, VCpuPreemptEvery: 701,
		}},
		// Delayed overflow service with only occasional vCPU churn: the
		// double switches that do land must not drain the withheld PMIs
		// so aggressively that folds never meet an in-flight read — this
		// is the tenant mix whose ablation (-nofixup) demonstrably tears.
		{Name: "tenant-pmi-storm", Inject: faultinject.Config{
			SpuriousPMIEvery: 211, DelayPMI: true, DelayBoundaries: 3,
			VCpuPreemptEvery: 701,
		}},
		{Name: "vcpu-migrate+flush", Inject: faultinject.Config{
			VCpuPreemptEvery: 701, MigrationStorm: true, FlushEvery: 499,
		}},
		{Name: "tenant-full-mix", Inject: faultinject.Config{
			VCpuPreemptInRegions: true, VCpuPreemptEvery: 701,
			PreemptInRegions: true, PreemptEvery: 997,
			SpuriousPMIEvery: 211, DelayPMI: true, DelayBoundaries: 3,
			MigrationStorm: true, FlushEvery: 499,
			SignalDelayBoundaries: 5,
		}},
	}
}

// Config shapes a campaign.
type Config struct {
	// Seeds is how many seeds each mix runs (default 8).
	Seeds int
	// Threads is the workload's thread count (default 6 — more
	// threads than the default 4 cores, so natural quantum preemption
	// and run-queue contention join whatever the mix injects).
	Threads int
	// Cores is the machine's core count (default 4).
	Cores int
	// Iters is reads per thread (default 400).
	Iters int
	// ComputeK is the measured region's compute-instruction count
	// (default 25).
	ComputeK int
	// WriteWidth narrows the PMU's writable counter width so overflow
	// folds happen constantly (default 12 bits — a fold every 4096
	// events instead of every 2^31). Must be at least 10 so a torn
	// read's chunk-sized error stays far above the re-execution slack.
	WriteWidth int
	// NoFixup disables fixup-region registration — the ablation that
	// must make the campaign report torn reads.
	NoFixup bool
	// Metrics attaches the kernel telemetry layer to every run and
	// merges the per-run registries into Result.Telemetry. Off by
	// default: campaigns are hot loops and the telemetry block is a
	// diagnosis aid, not part of the verdict.
	Metrics bool
	// Parallel is the worker count runs fan out across: 1 is the
	// serial engine, <= 0 uses GOMAXPROCS. Reports are byte-identical
	// at every width — runs are independent simulations and results
	// merge in (mix, seed) key order after the pool drains.
	Parallel int
	// Tenants, when > 1, activates the kernel's guest-scheduler layer:
	// workload threads are dealt round-robin across that many tenant
	// VMs, every run gets a shared uncore counter block, the mix matrix
	// defaults to TenantMixes, and the tenant attribution oracles
	// (conservation, no cross-tenant leakage, uncore share bounds) run
	// after every run.
	Tenants int
	// Mixes is the fault matrix (default DefaultMixes; TenantMixes
	// when Tenants > 1).
	Mixes []Mix
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 8
	}
	if c.Threads <= 0 {
		c.Threads = 6
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.Iters <= 0 {
		c.Iters = 400
	}
	if c.ComputeK <= 0 {
		c.ComputeK = 25
	}
	if c.WriteWidth <= 0 {
		c.WriteWidth = 12
	}
	if len(c.Mixes) == 0 {
		if c.Tenants > 1 {
			c.Mixes = TenantMixes()
		} else {
			c.Mixes = DefaultMixes()
		}
	}
	return c
}

// deltaSlack is the tolerated overshoot of a measured delta above its
// static cost: re-executed instructions from fixup rewinds (budgeted
// per region pass) plus the odd natural preemption. A torn read is off
// by a full write-limit chunk (≥ 2^10), far beyond it.
const deltaSlack = 256

// runSteps bounds one run; hitting it means a livelock and is reported
// as a run error rather than a hang.
const runSteps = 50_000_000

// MixResult aggregates one mix's runs across all seeds.
type MixResult struct {
	Name string
	Runs int
	// RunErrors counts runs that faulted, deadlocked, or hit the step
	// bound; Errs keeps one message per failed run.
	RunErrors int
	Errs      []string

	Injected faultinject.Stats

	Rewinds        uint64
	Folds          uint64
	CtxSwitches    uint64
	Migrations     uint64
	ReadsCompleted uint64

	// TornDeltas counts stored deltas outside [want, want+slack] — the
	// value oracle's torn reads.
	TornDeltas uint64
	// CheckerViolations is the invariant checker's total count.
	CheckerViolations int
	// Samples holds a few representative checker violations.
	Samples []invariant.Violation

	// Tenant-layer aggregates (zero unless the campaign ran with
	// Tenants > 1): double-switch and vCPU-migration counts, the
	// socket uncore total, and the summed |estimate − truth| error of
	// the share-by-cycles attribution policy.
	VCpuSwitches   uint64
	VCpuMigrations uint64
	TenantPreempts uint64
	UncoreTotal    uint64
	UncoreAbsErr   uint64
}

// Violations is the mix's total evidence of broken invariants from
// both oracles.
func (m *MixResult) Violations() uint64 {
	return m.TornDeltas + uint64(m.CheckerViolations)
}

// Result is a full campaign's outcome.
type Result struct {
	Cfg   Config
	Mixes []MixResult
	// Want is the static per-read delta every stored measurement is
	// judged against.
	Want uint64
	// Telemetry is the campaign-wide kernel metrics registry, merged
	// across every run, when Cfg.Metrics is set (nil otherwise).
	// Byte-deterministic for a given Config, like the rest of the
	// report.
	Telemetry *telemetry.Registry
}

// TotalViolations sums violations across the matrix.
func (r *Result) TotalViolations() uint64 {
	var n uint64
	for i := range r.Mixes {
		n += r.Mixes[i].Violations()
	}
	return n
}

// TotalRunErrors sums failed runs across the matrix.
func (r *Result) TotalRunErrors() int {
	n := 0
	for i := range r.Mixes {
		n += r.Mixes[i].RunErrors
	}
	return n
}

// Run executes the campaign: for each mix, Seeds independent runs of
// the instrumented workload under that mix's injector, every run
// watched by the invariant checker and scored by the value oracle.
//
// Runs fan out across cfg.Parallel workers through the runner engine.
// Each run is a self-contained simulation (own machine, own restored
// workload memory), outcomes land in slots keyed by (mix, seed) and
// fold into mix results in key order after the pool drains, and
// telemetry merges are commutative sums — so the rendered report is
// byte-identical at every pool width, including the serial engine.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Cfg: cfg, Want: buildWorkload(cfg).want}
	if cfg.Metrics {
		// The campaign registry is built by the same constructors as
		// each worker's, so the post-barrier merges cannot mismatch.
		res.Telemetry = telemetry.NewRegistry()
		kernel.NewMetrics(res.Telemetry)
		if cfg.Tenants > 1 {
			kernel.NewTenantMetrics(res.Telemetry, cfg.Tenants)
		}
	}
	rc := runner.Config{Jobs: len(cfg.Mixes) * cfg.Seeds, Parallel: cfg.Parallel}
	workers := make([]*campaignWorker, rc.Workers())
	outs := make([]runOutcome, rc.Jobs)
	runner.Run(rc, func(j, wi int) error {
		if workers[wi] == nil {
			workers[wi] = newCampaignWorker(cfg)
		}
		mi, s := j/cfg.Seeds, j%cfg.Seeds
		runOne(cfg, cfg.Mixes[mi], RunSeed(mi, s), workers[wi], &outs[j])
		return nil
	})
	for mi := range cfg.Mixes {
		mr := MixResult{Name: cfg.Mixes[mi].Name}
		for s := 0; s < cfg.Seeds; s++ {
			outs[mi*cfg.Seeds+s].foldInto(&mr)
		}
		res.Mixes = append(res.Mixes, mr)
	}
	mergeWorkerTelemetry(res.Telemetry, workers)
	return res
}

// mergeWorkerTelemetry folds each worker's aggregate registry into the
// campaign registry, post-barrier, in worker order. The fold is a
// commutative sum, so which worker executed which run cannot change
// the merged block.
func mergeWorkerTelemetry[W interface{ aggregate() *telemetry.Registry }](agg *telemetry.Registry, workers []W) {
	if agg == nil {
		return
	}
	for _, ws := range workers {
		if r := ws.aggregate(); r != nil {
			agg.MustMerge(r)
		}
	}
}

// workload is one built campaign program.
type workload struct {
	prog    *isa.Program
	space   *mem.Space
	entries []int
	bufs    []uint64
	regions [][2]int
	want    uint64 // static per-read delta: ComputeK + read-sequence length
}

// buildWorkload assembles the multi-threaded read loop. Each thread
// gets its own body, emitter, counter table and delta buffer, so
// per-thread virtualization is genuinely independent and the checker's
// fold generations never alias.
func buildWorkload(cfg Config) *workload {
	w := &workload{space: mem.NewSpace()}
	b := isa.NewBuilder()
	for i := 0; i < cfg.Threads; i++ {
		table := limit.AllocTable(w.space, 1)
		e := limit.NewEmitter(b, limit.ModeStock, table)
		ctr := e.AddCounter(limit.UserCounter(pmu.EvInstructions))
		if cfg.NoFixup {
			e.DisableFixupRegistration()
		}
		buf := w.space.AllocWords(uint64(cfg.Iters))
		w.bufs = append(w.bufs, buf)
		w.entries = append(w.entries, b.PC())
		e.EmitInit()
		b.MovImm(isa.R12, int64(buf))
		b.MovImm(isa.R8, 0)
		loop := fmt.Sprintf("chaos.t%d.loop", i)
		b.Label(loop)
		e.EmitMeasureStart(isa.R4, isa.R5, ctr)
		b.Compute(int64(cfg.ComputeK))
		e.EmitMeasureEnd(isa.R6, isa.R4, isa.R5, ctr)
		b.Shl(isa.R13, isa.R8, 3)
		b.Add(isa.R13, isa.R13, isa.R12)
		b.Store(isa.R13, 0, isa.R6)
		b.AddImm(isa.R8, isa.R8, 1)
		b.MovImm(isa.R9, int64(cfg.Iters))
		b.Br(isa.CondLT, isa.R8, isa.R9, loop)
		b.Halt()
		e.EmitFinish()
		w.regions = append(w.regions, e.Regions()...)
	}
	w.prog = b.MustBuild()
	r := w.regions[0]
	w.want = uint64(cfg.ComputeK) + uint64(r[1]-r[0])
	return w
}

// campaignWorker holds one pool worker's reusable run artifacts: the
// workload (program, memory image, counter tables, delta buffers) is
// built once and its memory snapshotted, then every run restores the
// snapshot instead of reassembling; the invariant checker, injector
// and telemetry registry are Reset between runs instead of
// reallocated. Only the machine is rebuilt per run — it is the
// simulation state itself, not scaffolding.
type campaignWorker struct {
	w    *workload
	snap *mem.Snapshot
	chk  *invariant.Checker
	inj  *faultinject.Injector
	reg  *telemetry.Registry // per-run scratch registry (nil without Metrics)
	km   *kernel.Metrics
	tm   *kernel.TenantMetrics // per-tenant counters (nil unless Metrics && Tenants > 1)
	agg  *telemetry.Registry   // this worker's cross-run aggregate
}

func newCampaignWorker(cfg Config) *campaignWorker {
	ws := &campaignWorker{w: buildWorkload(cfg)}
	ws.snap = ws.w.space.Snapshot()
	ws.chk = invariant.New(ws.w.regions)
	ws.inj = faultinject.New(faultinject.Config{})
	ws.inj.SetRegions(ws.w.regions)
	ws.inj.SetCores(cfg.Cores)
	if cfg.Metrics {
		ws.reg = telemetry.NewRegistry()
		ws.km = kernel.NewMetrics(ws.reg)
		ws.agg = telemetry.NewRegistry()
		kernel.NewMetrics(ws.agg)
		if cfg.Tenants > 1 {
			ws.tm = kernel.NewTenantMetrics(ws.reg, cfg.Tenants)
			kernel.NewTenantMetrics(ws.agg, cfg.Tenants)
		}
	}
	return ws
}

// aggregate is nil-receiver-safe: a pool wider than the job count
// leaves its surplus worker slots nil.
func (ws *campaignWorker) aggregate() *telemetry.Registry {
	if ws == nil {
		return nil
	}
	return ws.agg
}

// runOutcome is one run's contribution to its mix result, recorded in
// a keyed slot so the post-barrier fold is order-independent.
type runOutcome struct {
	errMsg string

	injected faultinject.Stats

	rewinds        uint64
	folds          uint64
	ctxSwitches    uint64
	migrations     uint64
	readsCompleted uint64

	tornDeltas        uint64
	checkerViolations int
	samples           []invariant.Violation

	vcpuSwitches   uint64
	vcpuMigrations uint64
	tenantPreempts uint64
	uncoreTotal    uint64
	uncoreAbsErr   uint64
}

// foldInto replays the outcome onto the mix aggregate exactly as the
// serial loop used to.
func (o *runOutcome) foldInto(mr *MixResult) {
	mr.Runs++
	if o.errMsg != "" {
		mr.RunErrors++
		mr.Errs = append(mr.Errs, o.errMsg)
	}
	mr.Injected.Add(o.injected)
	mr.Rewinds += o.rewinds
	mr.Folds += o.folds
	mr.CtxSwitches += o.ctxSwitches
	mr.Migrations += o.migrations
	mr.ReadsCompleted += o.readsCompleted
	mr.TornDeltas += o.tornDeltas
	mr.CheckerViolations += o.checkerViolations
	mr.VCpuSwitches += o.vcpuSwitches
	mr.VCpuMigrations += o.vcpuMigrations
	mr.TenantPreempts += o.tenantPreempts
	mr.UncoreTotal += o.uncoreTotal
	mr.UncoreAbsErr += o.uncoreAbsErr
	for _, v := range o.samples {
		if len(mr.Samples) >= 8 {
			break
		}
		mr.Samples = append(mr.Samples, v)
	}
}

// runOne executes a single seeded run on worker ws and records its
// outcome into out. The worker's pooled artifacts are restored/reset
// to their pristine state first, so a run's behaviour cannot depend on
// which runs the worker executed before it.
func runOne(cfg Config, mix Mix, seed uint64, ws *campaignWorker, out *runOutcome) {
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = cfg.WriteWidth

	kcfg := kernel.DefaultConfig()
	kcfg.Seed = seed
	kcfg.Quantum = 30_000 // short slices: natural preemption joins the storm
	kcfg.LimitOverflow = kernel.FoldInKernel
	if cfg.Tenants > 1 {
		kcfg.Tenants = cfg.Tenants
		// Tenant quantum shorter than the thread quantum: vCPU switches
		// dominate, so nearly every thread deschedule is the double kind.
		kcfg.TenantQuantum = 12_000
		if cfg.Cores > 1 {
			// Undersubscribe residency so the cap binds and cross-tenant
			// migration pressure is constant, not incidental.
			kcfg.VCPUs = cfg.Cores - 1
		}
	}

	w := ws.w
	w.space.Restore(ws.snap)
	m := machine.New(machine.Config{
		NumCores:      cfg.Cores,
		PMU:           feats,
		Kernel:        kcfg,
		TraceCapacity: 256,
		Uncore:        cfg.Tenants > 1,
	})

	icfg := mix.Inject
	icfg.Seed = seed ^ 0x5ca1ab1e
	icfg.NumSlots = feats.NumCounters
	ws.inj.Reset(icfg)
	ws.inj.Attach(m.Kern)

	ws.chk.Reset()
	ws.chk.Attach(m.Kern)

	if ws.km != nil {
		ws.reg.Reset()
		m.Kern.SetMetrics(ws.km)
		if ws.tm != nil {
			m.Kern.SetTenantMetrics(ws.tm)
		}
	}

	proc := m.Kern.NewProcess(w.prog, w.space)
	for i := 0; i < cfg.Threads; i++ {
		t := m.Kern.Spawn(proc, fmt.Sprintf("chaos%d", i), w.entries[i], seed*31+uint64(i))
		if cfg.Tenants > 1 {
			t.Tenant = i % cfg.Tenants // deal threads round-robin across guests
		}
	}

	res := m.Run(machine.RunLimits{MaxSteps: runSteps})
	switch {
	case res.Err != nil:
		out.errMsg = fmt.Sprintf("seed %#x: %v", seed, res.Err)
	case !res.AllDone:
		out.errMsg = fmt.Sprintf("seed %#x: run hit %d-step bound (livelock?)", seed, runSteps)
	}

	ws.chk.Finalize(proc, m.Kern.Threads(), 0)

	if accts := m.Kern.TenantAccts(); accts != nil {
		ut := m.Kern.UncoreTotal()
		ws.chk.CheckTenants(accts,
			m.GroundTruthRing(pmu.EvInstructions, pmu.RingUser), ut,
			m.Kern.Threads())
		out.uncoreTotal = ut
		for _, a := range accts {
			if a.UncoreEst >= a.Uncore {
				out.uncoreAbsErr += a.UncoreEst - a.Uncore
			} else {
				out.uncoreAbsErr += a.Uncore - a.UncoreEst
			}
		}
		out.vcpuSwitches = m.Kern.Stats.VCpuSwitches
		out.vcpuMigrations = m.Kern.Stats.VCpuMigrations
		out.tenantPreempts = m.Kern.Stats.TenantPreemptions
	}

	// Value oracle: every stored delta must sit within the static
	// cost's slack; a torn read is off by a write-limit chunk.
	for ti := 0; ti < cfg.Threads; ti++ {
		for it := 0; it < cfg.Iters; it++ {
			d := w.space.Read64(w.bufs[ti] + uint64(it)*8)
			if d < w.want || d > w.want+deltaSlack {
				out.tornDeltas++
			}
		}
	}

	out.injected = ws.inj.Stats

	out.folds = m.Kern.Stats.OverflowFolds
	out.ctxSwitches = m.Kern.Stats.CtxSwitches
	out.migrations = m.Kern.Stats.Migrations
	out.readsCompleted = ws.chk.ReadsCompleted
	for _, t := range m.Kern.Threads() {
		out.rewinds += t.Stats.FixupRewinds
	}
	out.checkerViolations = ws.chk.Count()
	for _, v := range ws.chk.Violations() {
		if len(out.samples) >= 8 {
			break
		}
		out.samples = append(out.samples, v)
	}
	if ws.km != nil {
		ws.agg.MustMerge(ws.reg)
	}
}

// Render writes the campaign table (and a violation detail section
// when any invariant broke). Output is byte-deterministic for a given
// Config.
func (r *Result) Render(w io.Writer) {
	fixup := "enabled"
	if r.Cfg.NoFixup {
		fixup = "DISABLED (ablation)"
	}
	title := fmt.Sprintf("Chaos campaign: %d seed(s) x %d mix(es), %d threads / %d cores, %d-bit writes, fixup %s",
		r.Cfg.Seeds, len(r.Mixes), r.Cfg.Threads, r.Cfg.Cores, r.Cfg.WriteWidth, fixup)
	t := tabwrite.New(title,
		"mix", "runs", "injected", "preempts", "spur-pmi", "delay-pmi",
		"migrations", "flushes", "rewinds", "folds", "reads", "torn", "violations", "errors")
	for i := range r.Mixes {
		m := &r.Mixes[i]
		t.Row(m.Name, m.Runs, m.Injected.Total(),
			m.Injected.ForcedPreemptions+m.Injected.RandomPreemptions,
			m.Injected.SpuriousPMIs, m.Injected.DelayedPMIs,
			m.Migrations, m.Injected.Flushes,
			m.Rewinds, m.Folds, m.ReadsCompleted,
			m.TornDeltas, m.CheckerViolations, m.RunErrors)
	}
	t.Render(w)

	if r.Cfg.Tenants > 1 {
		tt := tabwrite.New(
			fmt.Sprintf("Tenant layer (%d tenants): double switches and uncore attribution", r.Cfg.Tenants),
			"mix", "vcpu-switches", "vcpu-preempts", "vcpu-migrations",
			"uncore-total", "uncore-abs-err", "err-pct")
		for i := range r.Mixes {
			m := &r.Mixes[i]
			pct := "0.00"
			if m.UncoreTotal > 0 {
				pct = fmt.Sprintf("%.2f", 100*float64(m.UncoreAbsErr)/float64(m.UncoreTotal))
			}
			tt.Row(m.Name, m.VCpuSwitches, m.TenantPreempts, m.VCpuMigrations,
				m.UncoreTotal, m.UncoreAbsErr, pct)
		}
		tt.Render(w)
	}

	if r.TotalViolations() > 0 {
		d := tabwrite.New("Invariant violations (samples)", "mix", "thread", "kind", "detail")
		for i := range r.Mixes {
			m := &r.Mixes[i]
			for _, v := range m.Samples {
				d.Row(m.Name, v.TID, v.Kind, v.Detail)
			}
			if m.TornDeltas > 0 {
				d.Row(m.Name, "-", "torn-delta",
					fmt.Sprintf("%d measured delta(s) outside [%d,%d]",
						m.TornDeltas, r.Want, r.Want+deltaSlack))
			}
		}
		d.Render(w)
	}
	for i := range r.Mixes {
		for _, e := range r.Mixes[i].Errs {
			fmt.Fprintf(w, "run error [%s] %s\n", r.Mixes[i].Name, e)
		}
	}

	if r.Telemetry != nil {
		runs := 0
		for i := range r.Mixes {
			runs += r.Mixes[i].Runs
		}
		fmt.Fprintf(w, "\nKernel telemetry (merged across %d runs)\n", runs)
		r.Telemetry.Render(w)
	}
}
