package chaos

import (
	"testing"

	"limitsim/internal/faultinject"
	"limitsim/internal/invariant"
)

// BenchmarkCampaignSetupFresh measures what every run used to pay
// before worker pooling: assemble the workload (program, memory image,
// counter tables, delta buffers), a fresh invariant checker, and a
// fresh injector.
func BenchmarkCampaignSetupFresh(b *testing.B) {
	cfg := Config{}.withDefaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := buildWorkload(cfg)
		chk := invariant.New(w.regions)
		inj := faultinject.New(faultinject.Config{})
		inj.SetRegions(w.regions)
		inj.SetCores(cfg.Cores)
		_ = chk
	}
}

// BenchmarkCampaignSetupPooled measures the pooled path a worker pays
// per run instead: restore the memory snapshot and reset the checker
// and injector in place. Allocations per op should be near zero.
func BenchmarkCampaignSetupPooled(b *testing.B) {
	cfg := Config{}.withDefaults()
	ws := newCampaignWorker(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.w.space.Restore(ws.snap)
		ws.chk.Reset()
		ws.inj.Reset(faultinject.Config{})
	}
}

// BenchmarkSoakSetupFresh / Pooled are the lifecycle-engine analogues:
// the churn workload build is the dominant per-run cost the soak
// worker pool avoids.
func BenchmarkSoakSetupFresh(b *testing.B) {
	cfg := SoakConfig{}.withDefaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := newSoakWorker(cfg)
		_ = ws
	}
}

func BenchmarkSoakSetupPooled(b *testing.B) {
	cfg := SoakConfig{}.withDefaults()
	ws := newSoakWorker(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.w.Space.Restore(ws.snap)
		ws.chk.Reset()
		ws.inj.Reset(faultinject.Config{})
	}
}
