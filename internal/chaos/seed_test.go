package chaos

import "testing"

// TestRunSeedNoCollisions sweeps a matrix far larger than any real
// campaign and requires every (mix, seed) cell to map to a distinct
// kernel seed. The old affine derivation collided on every diagonal
// (mi+1 == mi, s-1 == s ... i.e. (mi, s) and (mi+k*K, s-k) for the
// golden-ratio stride K's modular structure); splitmix64 chaining
// makes the map injective in practice over any campaign-sized range.
func TestRunSeedNoCollisions(t *testing.T) {
	const mixes, seeds = 64, 1024
	seen := make(map[uint64][2]int, mixes*seeds)
	for mi := 0; mi < mixes; mi++ {
		for s := 0; s < seeds; s++ {
			k := RunSeed(mi, s)
			if prev, dup := seen[k]; dup {
				t.Fatalf("RunSeed collision: (%d,%d) and (%d,%d) both map to %#x",
					prev[0], prev[1], mi, s, k)
			}
			seen[k] = [2]int{mi, s}
		}
	}
}

// TestRunSeedDecorrelated pins the property the affine formula lacked:
// adjacent cells must not differ by a small constant, because the
// injector and spawn streams are derived by xor/offset and would
// otherwise run laterally correlated across the matrix.
func TestRunSeedDecorrelated(t *testing.T) {
	for mi := 0; mi < 8; mi++ {
		for s := 0; s < 8; s++ {
			d := int64(RunSeed(mi+1, s) - RunSeed(mi, s))
			if d < 1<<20 && d > -(1<<20) {
				t.Errorf("RunSeed(%d,%d) and RunSeed(%d,%d) differ by only %d",
					mi, s, mi+1, s, d)
			}
			d = int64(RunSeed(mi, s+1) - RunSeed(mi, s))
			if d < 1<<20 && d > -(1<<20) {
				t.Errorf("RunSeed(%d,%d) and RunSeed(%d,%d) differ by only %d",
					mi, s, mi, s+1, d)
			}
		}
	}
}
