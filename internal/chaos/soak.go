package chaos

import (
	"fmt"
	"io"

	"limitsim/internal/faultinject"
	"limitsim/internal/invariant"
	"limitsim/internal/kernel"
	"limitsim/internal/machine"
	"limitsim/internal/mem"
	"limitsim/internal/pmu"
	"limitsim/internal/runner"
	"limitsim/internal/tabwrite"
	"limitsim/internal/telemetry"
	"limitsim/internal/tls"
	"limitsim/internal/workloads"
)

// Soak campaign: the lifecycle analogue of the read-path campaign in
// this package. Where Run hammers a static thread set's read sequences,
// RunSoak drives the churning thread-pool workload (workloads.Churn —
// a manager cloning and joining waves of short-lived workers, the
// MySQL-connection-churn shape) through a matrix of lifecycle fault
// mixes: forced preemption inside read regions, asynchronous kills of
// pool workers, clone storms that stampede inheritance, and pinned-slot
// capacities tight enough to force graceful degradation. Every run
// carries the invariant checker; after every run the campaign audits
// leak-freedom (all slots, table words and region registrations
// returned), inheritance conservation (an inherited counter's reap
// value equals its thread's true instruction total), and the value
// oracle over every exact worker measurement. Estimated (degraded)
// runs are accounted separately — flagged, never silently wrong.

// SoakMix names one lifecycle fault mix. SlotCapacity, when nonzero,
// overrides the campaign's pinned-slot ledger capacity for this mix —
// exhaustion is a fault class here, not just a config.
type SoakMix struct {
	Name         string
	Inject       faultinject.Config // Seed/CloneEntry are set per run
	SlotCapacity int
}

// DefaultSoakMixes returns the standard lifecycle matrix for a pool of
// the given width. Rates use primes so no fault class phase-locks with
// the wave period.
func DefaultSoakMixes(pool int) []SoakMix {
	full := 2*(pool+1) + 4
	return []SoakMix{
		{Name: "churn-only", Inject: faultinject.Config{}},
		{Name: "preempt-churn", Inject: faultinject.Config{
			PreemptInRegions: true, PreemptEvery: 997,
		}},
		// Delayed PMIs slide folds into the read window; with fixup
		// active the rewind absorbs them, without it this is the mix
		// that reliably exposes torn reads.
		{Name: "pmi-churn", Inject: faultinject.Config{
			SpuriousPMIEvery: 211, DelayPMI: true, DelayBoundaries: 3,
		}},
		{Name: "kill-storm", Inject: faultinject.Config{
			KillEvery: 40009, KillClonesOnly: true,
		}},
		{Name: "clone-storm", Inject: faultinject.Config{
			CloneEvery: 20011, CloneBudget: 48,
		}},
		{Name: "slot-burst", SlotCapacity: 2 * pool, Inject: faultinject.Config{
			CloneEvery: 30011, CloneBudget: 32,
		}},
		{Name: "mgr-fallback", SlotCapacity: 1, Inject: faultinject.Config{}},
		{Name: "full-churn", SlotCapacity: full, Inject: faultinject.Config{
			PreemptInRegions: true, PreemptEvery: 997,
			KillEvery: 40009, KillClonesOnly: true,
			CloneEvery: 20011, CloneBudget: 48,
		}},
	}
}

// SoakConfig shapes a soak campaign.
type SoakConfig struct {
	// Seeds is how many seeds each mix runs (default 4).
	Seeds int
	// Pool is the worker-pool width (default 4).
	Pool int
	// Waves is clone/join rounds per run (default 6).
	Waves int
	// Iters is measured reads per worker (default 40).
	Iters int
	// ComputeK is the measured region's compute count (default 20).
	ComputeK int
	// Cores is the machine's core count (default 4).
	Cores int
	// WriteWidth narrows the PMU's writable width so even short-lived
	// workers cross fold boundaries (default 10, the narrowest width
	// whose chunk still dwarfs the value oracle's slack).
	WriteWidth int
	// SlotCapacity is the pinned-slot ledger capacity for mixes that do
	// not override it (default 2*(Pool+1)+4: the full pool plus
	// headroom for storm children).
	SlotCapacity int
	// Retries is the manager OpenPolicy retry budget (0: policy
	// default).
	Retries int
	// NoFixup disables fixup-region registration — the ablation the
	// campaign must detect as torn reads.
	NoFixup bool
	// AblateReclaim disables exit-time resource reclamation — the
	// ablation the leak and bad-reap oracles must detect.
	AblateReclaim bool
	// Metrics attaches the kernel telemetry layer to every run and
	// merges the per-run registries into SoakResult.Telemetry.
	Metrics bool
	// Parallel is the worker count seeds fan out across within each
	// mix: 1 is the serial engine, <= 0 uses GOMAXPROCS. Mixes run
	// sequentially (workers persist across them); reports stay
	// byte-identical at every width.
	Parallel int
	// Tenants, when > 1, runs that many independent manager+pool copies
	// as guest VMs under the kernel's tenant scheduler: slot capacities
	// scale with the combined pool, every run gets a shared uncore
	// block, a vCPU-churn mix joins the matrix, and the tenant
	// attribution oracles run after every run.
	Tenants int
	// Mixes is the lifecycle fault matrix (default DefaultSoakMixes).
	Mixes []SoakMix
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Seeds <= 0 {
		c.Seeds = 4
	}
	if c.Pool <= 0 {
		c.Pool = 4
	}
	if c.Waves <= 0 {
		c.Waves = 6
	}
	if c.Iters <= 0 {
		c.Iters = 40
	}
	if c.ComputeK <= 0 {
		c.ComputeK = 20
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.WriteWidth <= 0 {
		c.WriteWidth = 10
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.SlotCapacity <= 0 {
		// The combined pool across all guests, plus storm headroom.
		c.SlotCapacity = 2*c.Tenants*(c.Pool+1) + 4
	}
	if len(c.Mixes) == 0 {
		c.Mixes = SoakMixes(c.Pool, c.Tenants)
	}
	return c
}

// SoakMixes returns the default lifecycle matrix for a soak of the
// given per-tenant pool width and tenant count: DefaultSoakMixes sized
// to the combined pool, plus — when the tenant layer is on — a
// vCPU-churn mix that lands double context switches inside read
// regions while the pools churn.
func SoakMixes(pool, tenants int) []SoakMix {
	if tenants <= 0 {
		tenants = 1
	}
	mixes := DefaultSoakMixes(tenants * pool)
	if tenants > 1 {
		mixes = append(mixes, SoakMix{Name: "vcpu-churn",
			Inject: faultinject.Config{
				VCpuPreemptInRegions: true, VCpuPreemptEvery: 701,
			}})
	}
	return mixes
}

func (c SoakConfig) churn() workloads.ChurnConfig {
	return workloads.ChurnConfig{
		Pool:     c.Pool,
		Waves:    c.Waves,
		Iters:    c.Iters,
		ComputeK: c.ComputeK,
		Retries:  c.Retries,
		NoFixup:  c.NoFixup,
		Tenants:  c.Tenants,
	}
}

// WaveAcct is one wave's worker-run accounting, aggregated across a
// mix's seeds.
type WaveAcct struct {
	Exact   uint64 // completed on the exact rdpmc path
	Est     uint64 // completed on the flagged estimated path
	Partial uint64 // killed (or degraded mid-run) before finishing
}

// SoakMixResult aggregates one lifecycle mix's runs across all seeds.
type SoakMixResult struct {
	Name      string
	Runs      int
	RunErrors int
	Errs      []string

	Injected faultinject.Stats

	// Kernel lifecycle traffic.
	Clones uint64
	Exits  uint64
	Kills  uint64

	// Slot-ledger pressure and its visible consequences.
	Denials      uint64
	DegradedRuns uint64 // worker runs flagged as estimates

	CompletedRuns uint64
	PartialRuns   uint64
	Waves         []WaveAcct

	Folds          uint64
	Rewinds        uint64
	ReadsCompleted uint64

	// TornDeltas counts exact-path measurements outside the static
	// cost's slack; BadConservation counts inherited counters whose
	// reap value diverged from the thread's true instruction count;
	// Leaks counts resource-leak reports from the end-of-run audit.
	TornDeltas        uint64
	BadConservation   uint64
	Leaks             int
	CheckerViolations int
	Samples           []invariant.Violation

	// Tenant-layer aggregates (zero unless the soak ran with
	// Tenants > 1); see MixResult for their meaning.
	VCpuSwitches   uint64
	VCpuMigrations uint64
	TenantPreempts uint64
	UncoreTotal    uint64
	UncoreAbsErr   uint64
}

// Violations totals the mix's evidence from all three oracles.
func (m *SoakMixResult) Violations() uint64 {
	return m.TornDeltas + m.BadConservation + uint64(m.CheckerViolations)
}

// SoakResult is a full soak campaign's outcome.
type SoakResult struct {
	Cfg   SoakConfig
	Mixes []SoakMixResult
	// Want is the static per-read delta exact measurements are judged
	// against.
	Want uint64
	// Telemetry is the campaign-wide kernel metrics registry, merged
	// across every run, when Cfg.Metrics is set (nil otherwise).
	Telemetry *telemetry.Registry
}

// TotalViolations sums violations across the matrix.
func (r *SoakResult) TotalViolations() uint64 {
	var n uint64
	for i := range r.Mixes {
		n += r.Mixes[i].Violations()
	}
	return n
}

// TotalRunErrors sums failed runs across the matrix.
func (r *SoakResult) TotalRunErrors() int {
	n := 0
	for i := range r.Mixes {
		n += r.Mixes[i].RunErrors
	}
	return n
}

// TotalDegraded sums flagged estimated runs across the matrix.
func (r *SoakResult) TotalDegraded() uint64 {
	var n uint64
	for i := range r.Mixes {
		n += r.Mixes[i].DegradedRuns
	}
	return n
}

// RunSoak executes the soak campaign: for each lifecycle mix, Seeds
// independent long runs of the churn workload under that mix's
// injector and slot capacity, each audited by the invariant checker
// and the campaign's leak, conservation and value oracles.
//
// Within each mix, seeds fan out across cfg.Parallel workers through
// the runner engine; mixes themselves run sequentially so the worker
// pool (and its prebuilt churn workloads) persists across the matrix.
// Outcomes land in seed-keyed slots and fold in seed order, so the
// report is byte-identical at every pool width.
func RunSoak(cfg SoakConfig) *SoakResult {
	cfg = cfg.withDefaults()
	res := &SoakResult{Cfg: cfg, Want: workloads.BuildChurn(cfg.churn()).Want}
	if cfg.Metrics {
		res.Telemetry = telemetry.NewRegistry()
		kernel.NewMetrics(res.Telemetry)
		if cfg.Tenants > 1 {
			kernel.NewTenantMetrics(res.Telemetry, cfg.Tenants)
		}
	}
	rc := runner.Config{Jobs: cfg.Seeds, Parallel: cfg.Parallel}
	workers := make([]*soakWorker, rc.Workers())
	for mi := range cfg.Mixes {
		mix := cfg.Mixes[mi]
		outs := make([]soakOutcome, cfg.Seeds)
		runner.Run(rc, func(j, wi int) error {
			if workers[wi] == nil {
				workers[wi] = newSoakWorker(cfg)
			}
			runOneSoak(cfg, mix, RunSeed(mi, j), workers[wi], &outs[j])
			return nil
		})
		mr := SoakMixResult{Name: mix.Name, Waves: make([]WaveAcct, cfg.Waves)}
		for s := range outs {
			outs[s].foldInto(&mr)
		}
		res.Mixes = append(res.Mixes, mr)
	}
	mergeWorkerTelemetry(res.Telemetry, workers)
	return res
}

// soakWorker holds one pool worker's reusable soak artifacts: the
// churn workload is built once and its memory image snapshotted, the
// checker/injector/registries are Reset between runs. The machine is
// rebuilt per run.
type soakWorker struct {
	w    *workloads.Churn
	snap *mem.Snapshot
	chk  *invariant.Checker
	inj  *faultinject.Injector
	reg  *telemetry.Registry
	km   *kernel.Metrics
	tm   *kernel.TenantMetrics
	agg  *telemetry.Registry
}

func newSoakWorker(cfg SoakConfig) *soakWorker {
	ws := &soakWorker{w: workloads.BuildChurn(cfg.churn())}
	ws.snap = ws.w.Space.Snapshot()
	ws.chk = invariant.New(ws.w.Regions)
	ws.inj = faultinject.New(faultinject.Config{})
	ws.inj.SetRegions(ws.w.Regions)
	ws.inj.SetCores(cfg.Cores)
	if cfg.Metrics {
		ws.reg = telemetry.NewRegistry()
		ws.km = kernel.NewMetrics(ws.reg)
		ws.agg = telemetry.NewRegistry()
		kernel.NewMetrics(ws.agg)
		if cfg.Tenants > 1 {
			ws.tm = kernel.NewTenantMetrics(ws.reg, cfg.Tenants)
			kernel.NewTenantMetrics(ws.agg, cfg.Tenants)
		}
	}
	return ws
}

// aggregate is nil-receiver-safe: a pool wider than the job count
// leaves its surplus worker slots nil.
func (ws *soakWorker) aggregate() *telemetry.Registry {
	if ws == nil {
		return nil
	}
	return ws.agg
}

// soakOutcome is one soak run's contribution to its mix result,
// recorded in a seed-keyed slot for the order-independent fold.
type soakOutcome struct {
	errMsg string

	injected faultinject.Stats

	clones  uint64
	exits   uint64
	kills   uint64
	denials uint64

	degradedRuns  uint64
	completedRuns uint64
	partialRuns   uint64
	waves         []WaveAcct

	folds          uint64
	rewinds        uint64
	readsCompleted uint64

	tornDeltas        uint64
	badConservation   uint64
	leaks             int
	checkerViolations int
	samples           []invariant.Violation

	vcpuSwitches   uint64
	vcpuMigrations uint64
	tenantPreempts uint64
	uncoreTotal    uint64
	uncoreAbsErr   uint64
}

// foldInto replays the outcome onto the mix aggregate exactly as the
// serial loop used to.
func (o *soakOutcome) foldInto(mr *SoakMixResult) {
	mr.Runs++
	if o.errMsg != "" {
		mr.RunErrors++
		mr.Errs = append(mr.Errs, o.errMsg)
	}
	mr.Injected.Add(o.injected)
	mr.Clones += o.clones
	mr.Exits += o.exits
	mr.Kills += o.kills
	mr.Denials += o.denials
	mr.DegradedRuns += o.degradedRuns
	mr.CompletedRuns += o.completedRuns
	mr.PartialRuns += o.partialRuns
	for wv := range o.waves {
		mr.Waves[wv].Exact += o.waves[wv].Exact
		mr.Waves[wv].Est += o.waves[wv].Est
		mr.Waves[wv].Partial += o.waves[wv].Partial
	}
	mr.Folds += o.folds
	mr.Rewinds += o.rewinds
	mr.ReadsCompleted += o.readsCompleted
	mr.TornDeltas += o.tornDeltas
	mr.BadConservation += o.badConservation
	mr.Leaks += o.leaks
	mr.CheckerViolations += o.checkerViolations
	mr.VCpuSwitches += o.vcpuSwitches
	mr.VCpuMigrations += o.vcpuMigrations
	mr.TenantPreempts += o.tenantPreempts
	mr.UncoreTotal += o.uncoreTotal
	mr.UncoreAbsErr += o.uncoreAbsErr
	for _, v := range o.samples {
		if len(mr.Samples) >= 8 {
			break
		}
		mr.Samples = append(mr.Samples, v)
	}
}

// runOneSoak executes a single seeded soak run on worker ws and
// records its outcome into out.
func runOneSoak(cfg SoakConfig, mix SoakMix, seed uint64, ws *soakWorker, out *soakOutcome) {
	feats := pmu.DefaultFeatures()
	feats.WriteWidth = cfg.WriteWidth

	kcfg := kernel.DefaultConfig()
	kcfg.Seed = seed
	kcfg.Quantum = 30_000
	kcfg.LimitOverflow = kernel.FoldInKernel
	kcfg.VirtSlotCapacity = cfg.SlotCapacity
	if mix.SlotCapacity > 0 {
		kcfg.VirtSlotCapacity = mix.SlotCapacity
	}
	kcfg.AblateReclaim = cfg.AblateReclaim
	if cfg.Tenants > 1 {
		kcfg.Tenants = cfg.Tenants
		kcfg.TenantQuantum = 12_000
		if cfg.Cores > 1 {
			kcfg.VCPUs = cfg.Cores - 1
		}
	}

	w := ws.w
	w.Space.Restore(ws.snap)
	m := machine.New(machine.Config{
		NumCores:      cfg.Cores,
		PMU:           feats,
		Kernel:        kcfg,
		TraceCapacity: 256,
		Uncore:        cfg.Tenants > 1,
	})

	icfg := mix.Inject
	icfg.Seed = seed ^ 0x5ca1ab1e
	icfg.NumSlots = feats.NumCounters
	if icfg.CloneEvery > 0 {
		icfg.CloneEntry = w.StubEntry
	}
	ws.inj.Reset(icfg)
	ws.inj.Attach(m.Kern)

	ws.chk.Reset()
	ws.chk.Attach(m.Kern)

	if ws.km != nil {
		ws.reg.Reset()
		m.Kern.SetMetrics(ws.km)
		if ws.tm != nil {
			m.Kern.SetTenantMetrics(ws.tm)
		}
	}

	proc := m.Kern.NewProcess(w.Prog, w.Space)
	for mt := 0; mt < cfg.Tenants; mt++ {
		name := "churn-mgr"
		if cfg.Tenants > 1 {
			name = fmt.Sprintf("churn-mgr%d", mt)
		}
		mgr := m.Kern.Spawn(proc, name, w.Entries[mt], seed*31+uint64(mt))
		mgr.SetReg(tls.SlotReg, uint64(w.ManagerSlot(mt)))
		mgr.Tenant = mt
	}

	res := m.Run(machine.RunLimits{MaxSteps: runSteps})
	switch {
	case res.Err != nil:
		out.errMsg = fmt.Sprintf("seed %#x: %v", seed, res.Err)
	case !res.AllDone:
		out.errMsg = fmt.Sprintf("seed %#x: run hit %d-step bound (livelock?)", seed, runSteps)
	}

	// Leak oracle: with every thread exited, the kernel's resource
	// ledgers must read zero. Under AblateReclaim they must NOT — the
	// checker reporting the leaks is the ablation detecting itself.
	if res.AllDone {
		ws.chk.CheckLeaks(m.Kern.Resources())
	}

	// Conservation oracle: every cloned thread's inherited instruction
	// counter (index 0, live from birth to reap) must end exactly equal
	// to the thread's true retired-user-instruction count. Degraded
	// children carry perf estimates instead and are exempt by kind.
	// (The end-of-run Finalize pass is deliberately not used here: the
	// pool recycles per-slot table words every wave, so dead workers'
	// counters alias live words; the reap-time capture is the correct
	// final value.)
	for _, t := range m.Kern.Threads() {
		if t.ClonedFrom < 0 {
			continue
		}
		cs := t.Counters()
		if len(cs) == 0 || cs[0].Kind != kernel.KindLimit || cs[0].Closed {
			continue
		}
		if v, ok := ws.chk.ReapValue(t.ID, 0); ok && v != t.Stats.UserInstructions {
			out.badConservation++
		}
	}

	// Value oracle: every exact-path measurement a worker published
	// before finishing (or dying) must sit within the static cost's
	// slack; estimated runs are flagged, counted, and skipped.
	out.waves = make([]WaveAcct, cfg.Waves)
	for ri := 0; ri < w.Runs(); ri++ {
		wave := ri / (cfg.Tenants * cfg.Pool)
		est := w.Estimated(ri)
		if est {
			out.degradedRuns++
		}
		n := w.Done(ri)
		if n > uint64(cfg.Iters) {
			n = uint64(cfg.Iters)
		}
		switch {
		case n < uint64(cfg.Iters):
			out.partialRuns++
			out.waves[wave].Partial++
		case est:
			out.completedRuns++
			out.waves[wave].Est++
		default:
			out.completedRuns++
			out.waves[wave].Exact++
		}
		if est {
			continue
		}
		for i := uint64(0); i < n; i++ {
			d := w.Delta(ri, int(i))
			if d < w.Want || d > w.Want+deltaSlack {
				out.tornDeltas++
			}
		}
	}

	// Tenant attribution oracles: per-guest instruction conservation,
	// no cross-tenant leakage, and uncore-share bounds — they must hold
	// under every lifecycle storm, kills and clone stampedes included.
	if accts := m.Kern.TenantAccts(); accts != nil {
		ut := m.Kern.UncoreTotal()
		ws.chk.CheckTenants(accts,
			m.GroundTruthRing(pmu.EvInstructions, pmu.RingUser), ut,
			m.Kern.Threads())
		out.uncoreTotal = ut
		for _, a := range accts {
			if a.UncoreEst >= a.Uncore {
				out.uncoreAbsErr += a.UncoreEst - a.Uncore
			} else {
				out.uncoreAbsErr += a.Uncore - a.UncoreEst
			}
		}
		out.vcpuSwitches = m.Kern.Stats.VCpuSwitches
		out.vcpuMigrations = m.Kern.Stats.VCpuMigrations
		out.tenantPreempts = m.Kern.Stats.TenantPreemptions
	}

	out.injected = ws.inj.Stats
	out.clones = m.Kern.Stats.Clones
	out.exits = m.Kern.Stats.Exits
	out.kills = m.Kern.Stats.Kills
	out.denials = m.Kern.Resources().SlotDenials
	out.folds = m.Kern.Stats.OverflowFolds
	out.readsCompleted = ws.chk.ReadsCompleted
	for _, t := range m.Kern.Threads() {
		out.rewinds += t.Stats.FixupRewinds
	}
	out.checkerViolations = ws.chk.Count()
	for _, v := range ws.chk.Violations() {
		if v.Kind == invariant.KindLeak {
			out.leaks++
		}
		if len(out.samples) < 8 {
			out.samples = append(out.samples, v)
		}
	}
	if ws.km != nil {
		ws.agg.MustMerge(ws.reg)
	}
}

// Render writes the soak report: the mix table, the per-wave
// accounting, and violation details when any oracle fired. Output is
// byte-deterministic for a given SoakConfig.
func (r *SoakResult) Render(w io.Writer) {
	fixup := "enabled"
	if r.Cfg.NoFixup {
		fixup = "DISABLED (ablation)"
	}
	reclaim := "enabled"
	if r.Cfg.AblateReclaim {
		reclaim = "DISABLED (ablation)"
	}
	pool := fmt.Sprintf("pool %d", r.Cfg.Pool)
	if r.Cfg.Tenants > 1 {
		pool = fmt.Sprintf("%d tenants x pool %d", r.Cfg.Tenants, r.Cfg.Pool)
	}
	title := fmt.Sprintf("Soak campaign: %d seed(s) x %d mix(es), %s x %d waves x %d reads, %d cores, %d-bit writes, slots %d, fixup %s, reclaim %s",
		r.Cfg.Seeds, len(r.Mixes), pool, r.Cfg.Waves, r.Cfg.Iters,
		r.Cfg.Cores, r.Cfg.WriteWidth, r.Cfg.SlotCapacity, fixup, reclaim)
	t := tabwrite.New(title,
		"mix", "runs", "clones", "exits", "kills", "denials", "degraded",
		"complete", "partial", "rewinds", "folds", "reads",
		"torn", "conserve", "leaks", "violations", "errors")
	for i := range r.Mixes {
		m := &r.Mixes[i]
		t.Row(m.Name, m.Runs, m.Clones, m.Exits, m.Kills, m.Denials,
			m.DegradedRuns, m.CompletedRuns, m.PartialRuns,
			m.Rewinds, m.Folds, m.ReadsCompleted,
			m.TornDeltas, m.BadConservation, m.Leaks, m.CheckerViolations, m.RunErrors)
	}
	t.Render(w)

	if r.Cfg.Tenants > 1 {
		tt := tabwrite.New(
			fmt.Sprintf("Tenant layer (%d tenants): double switches and uncore attribution", r.Cfg.Tenants),
			"mix", "vcpu-switches", "vcpu-preempts", "vcpu-migrations",
			"uncore-total", "uncore-abs-err", "err-pct")
		for i := range r.Mixes {
			m := &r.Mixes[i]
			pct := "0.00"
			if m.UncoreTotal > 0 {
				pct = fmt.Sprintf("%.2f", 100*float64(m.UncoreAbsErr)/float64(m.UncoreTotal))
			}
			tt.Row(m.Name, m.VCpuSwitches, m.TenantPreempts, m.VCpuMigrations,
				m.UncoreTotal, m.UncoreAbsErr, pct)
		}
		tt.Render(w)
	}

	wa := tabwrite.New("Per-wave accounting (worker runs across all seeds)",
		"mix", "wave", "exact", "estimated", "partial")
	for i := range r.Mixes {
		m := &r.Mixes[i]
		for wv := range m.Waves {
			wa.Row(m.Name, wv, m.Waves[wv].Exact, m.Waves[wv].Est, m.Waves[wv].Partial)
		}
	}
	wa.Render(w)

	if r.TotalViolations() > 0 {
		d := tabwrite.New("Invariant violations (samples)", "mix", "thread", "kind", "detail")
		for i := range r.Mixes {
			m := &r.Mixes[i]
			for _, v := range m.Samples {
				d.Row(m.Name, v.TID, v.Kind, v.Detail)
			}
			if m.TornDeltas > 0 {
				d.Row(m.Name, "-", "torn-delta",
					fmt.Sprintf("%d exact measurement(s) outside [%d,%d]",
						m.TornDeltas, r.Want, r.Want+deltaSlack))
			}
			if m.BadConservation > 0 {
				d.Row(m.Name, "-", "bad-conservation",
					fmt.Sprintf("%d inherited counter(s) diverged from true instruction totals",
						m.BadConservation))
			}
		}
		d.Render(w)
	}
	for i := range r.Mixes {
		for _, e := range r.Mixes[i].Errs {
			fmt.Fprintf(w, "run error [%s] %s\n", r.Mixes[i].Name, e)
		}
	}

	if r.Telemetry != nil {
		runs := 0
		for i := range r.Mixes {
			runs += r.Mixes[i].Runs
		}
		fmt.Fprintf(w, "\nKernel telemetry (merged across %d runs)\n", runs)
		r.Telemetry.Render(w)
	}
}
