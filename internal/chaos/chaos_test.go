package chaos

import (
	"strings"
	"testing"
)

// quickCfg keeps campaign tests fast while still folding and
// preempting heavily.
func quickCfg() Config {
	return Config{
		Seeds:      2,
		Threads:    4,
		Cores:      2,
		Iters:      150,
		ComputeK:   25,
		WriteWidth: 12,
	}
}

// TestCampaignDeterminism runs the identical campaign twice and
// requires byte-identical rendered output — the replayability claim:
// same seeds, same config, same faults, same outcome.
func TestCampaignDeterminism(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		Run(quickCfg()).Render(&sb)
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("same config produced different campaign output:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestCampaignTelemetryDeterministic runs the metrics-enabled campaign
// twice and requires byte-identical reports — the acceptance criterion
// for the telemetry block — and cross-checks the merged registry
// against the campaign's own aggregates.
func TestCampaignTelemetryDeterministic(t *testing.T) {
	cfg := quickCfg()
	cfg.Seeds = 1
	cfg.Metrics = true
	render := func() (*Result, string) {
		r := Run(cfg)
		var sb strings.Builder
		r.Render(&sb)
		return r, sb.String()
	}
	r, a := render()
	_, b := render()
	if a != b {
		t.Errorf("same config produced different telemetry output:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if r.Telemetry == nil {
		t.Fatal("Metrics set but Result.Telemetry is nil")
	}
	for _, want := range []string{
		"Kernel telemetry", "kern.switch.out.cycles", "kern.pmi.latency.cycles",
		"kern.folds", "pmu.slots.occupancy",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("telemetry render missing %q", want)
		}
	}

	// The registry's counters and the campaign's own aggregation read
	// the same kernel, so they must agree exactly.
	var folds, rewinds uint64
	for i := range r.Mixes {
		folds += r.Mixes[i].Folds
		rewinds += r.Mixes[i].Rewinds
	}
	if got := r.Telemetry.LookupCounter("kern.folds").Value(); got != folds {
		t.Errorf("kern.folds = %d, campaign counted %d", got, folds)
	}
	if got := r.Telemetry.LookupCounter("kern.rewinds.taken").Value(); got != rewinds {
		t.Errorf("kern.rewinds.taken = %d, campaign counted %d", got, rewinds)
	}
	if h := r.Telemetry.LookupHistogram("kern.switch.out.cycles"); h.Count() == 0 {
		t.Error("no context-switch costs observed across a preempting campaign")
	}
}

// TestSoakTelemetryDeterministic is the soak-side analogue: lifecycle
// metrics (clone/exit cost histograms, slot denials) must be present
// and byte-deterministic.
func TestSoakTelemetryDeterministic(t *testing.T) {
	cfg := quickSoakCfg()
	cfg.Seeds = 1
	cfg.Metrics = true
	render := func() (*SoakResult, string) {
		r := RunSoak(cfg)
		var sb strings.Builder
		r.Render(&sb)
		return r, sb.String()
	}
	r, a := render()
	_, b := render()
	if a != b {
		t.Errorf("same config produced different soak telemetry output:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if r.Telemetry == nil {
		t.Fatal("Metrics set but SoakResult.Telemetry is nil")
	}
	if h := r.Telemetry.LookupHistogram("kern.clone.cycles"); h.Count() == 0 {
		t.Error("no clone costs observed across a churn campaign")
	}
	if h := r.Telemetry.LookupHistogram("kern.exit.cycles"); h.Count() == 0 {
		t.Error("no exit costs observed across a churn campaign")
	}
	var denials uint64
	for i := range r.Mixes {
		denials += r.Mixes[i].Denials
	}
	if got := r.Telemetry.LookupCounter("pmu.slots.denied").Value(); got != denials {
		t.Errorf("pmu.slots.denied = %d, campaign counted %d", got, denials)
	}
}

// TestCampaignInvariantsHoldWithFixup runs the full default mix matrix
// with the fixup patch active: faults must actually be injected, reads
// must complete, and not a single invariant may break.
func TestCampaignInvariantsHoldWithFixup(t *testing.T) {
	r := Run(quickCfg())
	if errs := r.TotalRunErrors(); errs != 0 {
		for _, m := range r.Mixes {
			for _, e := range m.Errs {
				t.Logf("[%s] %s", m.Name, e)
			}
		}
		t.Fatalf("%d run(s) failed", errs)
	}
	if v := r.TotalViolations(); v != 0 {
		var sb strings.Builder
		r.Render(&sb)
		t.Fatalf("%d invariant violation(s) with fixup enabled:\n%s", v, sb.String())
	}
	var injected, reads, folds uint64
	for i := range r.Mixes {
		injected += r.Mixes[i].Injected.Total()
		reads += r.Mixes[i].ReadsCompleted
		folds += r.Mixes[i].Folds
	}
	if injected == 0 {
		t.Error("campaign injected no faults")
	}
	if reads == 0 {
		t.Error("campaign completed no reads")
	}
	if folds == 0 {
		t.Error("narrowed counters produced no overflow folds")
	}
}

// TestCampaignDetectsTornReadsWithoutFixup disables fixup-region
// registration and requires the campaign to *detect* the resulting torn
// reads — gracefully, as counted violations rather than a panic — with
// the generation oracle and the value oracle in agreement that tearing
// occurred.
func TestCampaignDetectsTornReadsWithoutFixup(t *testing.T) {
	cfg := quickCfg()
	cfg.Seeds = 4
	cfg.NoFixup = true
	r := Run(cfg)
	if errs := r.TotalRunErrors(); errs != 0 {
		t.Fatalf("%d run(s) failed; detection must be graceful", errs)
	}
	if r.TotalViolations() == 0 {
		t.Fatal("fixup disabled but no torn reads detected — the checker is blind")
	}
	var torn uint64
	checker := 0
	for i := range r.Mixes {
		torn += r.Mixes[i].TornDeltas
		checker += r.Mixes[i].CheckerViolations
	}
	if torn == 0 {
		t.Error("value oracle saw no torn deltas")
	}
	if checker == 0 {
		t.Error("generation oracle saw no violations")
	}
}

// TestRenderShape pins the campaign report's user-visible surface.
func TestRenderShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Seeds = 1
	var sb strings.Builder
	Run(cfg).Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Chaos campaign", "fixup enabled",
		"baseline", "preempt-storm", "pmi-storm", "migrate+flush", "full-mix",
		"rewinds", "folds", "torn", "violations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	cfg.NoFixup = true
	cfg.Mixes = []Mix{DefaultMixes()[2]} // pmi-storm reliably tears
	sb.Reset()
	Run(cfg).Render(&sb)
	out = sb.String()
	if !strings.Contains(out, "DISABLED (ablation)") {
		t.Errorf("ablation render missing fixup-disabled banner:\n%s", out)
	}
	if !strings.Contains(out, "Invariant violations (samples)") {
		t.Errorf("ablation render missing violation detail table:\n%s", out)
	}
}

// quickTenantCfg is the tenant-layer campaign sizing: three guest VMs
// time-sharing two cores. Iters stays at the production default —
// tenant runs need enough instructions for natural overflow folds, or
// the tear oracles have nothing to bite on.
func quickTenantCfg() Config {
	return Config{
		Seeds:      2,
		Threads:    6,
		Cores:      2,
		Iters:      400,
		ComputeK:   25,
		WriteWidth: 12,
		Tenants:    3,
	}
}

// TestTenantCampaignInvariantsHold runs the full tenant mix matrix —
// vCPU preemption storms, cross-tenant migration, PMI delays — with
// fixup active: the double context switch must not tear a single read,
// and the attribution oracles (conservation, leakage, uncore share)
// must hold on every run.
func TestTenantCampaignInvariantsHold(t *testing.T) {
	r := Run(quickTenantCfg())
	if errs := r.TotalRunErrors(); errs != 0 {
		for _, m := range r.Mixes {
			for _, e := range m.Errs {
				t.Logf("[%s] %s", m.Name, e)
			}
		}
		t.Fatalf("%d tenant run(s) failed", errs)
	}
	if v := r.TotalViolations(); v != 0 {
		var sb strings.Builder
		r.Render(&sb)
		t.Fatalf("%d invariant violation(s) under the tenant matrix with fixup enabled:\n%s", v, sb.String())
	}
	var switches, preempts, uncore uint64
	for i := range r.Mixes {
		switches += r.Mixes[i].VCpuSwitches
		preempts += r.Mixes[i].TenantPreempts
		uncore += r.Mixes[i].UncoreTotal
	}
	if switches == 0 {
		t.Error("tenant campaign performed no vCPU switches")
	}
	if preempts == 0 {
		t.Error("tenant campaign delivered no vCPU preemptions")
	}
	if uncore == 0 {
		t.Error("tenant campaign observed no socket uncore events")
	}
}

// TestTenantCampaignDetectsTornReadsWithoutFixup is the tenant-layer
// ablation: under delayed-PMI service with vCPU churn, disabling the
// fixup must produce torn reads that both oracles detect — proving the
// double-context-switch path is actually load-bearing, not vacuously
// safe.
func TestTenantCampaignDetectsTornReadsWithoutFixup(t *testing.T) {
	cfg := quickTenantCfg()
	cfg.Seeds = 4
	cfg.NoFixup = true
	cfg.Mixes = []Mix{TenantMixes()[2]} // tenant-pmi-storm reliably tears
	r := Run(cfg)
	if errs := r.TotalRunErrors(); errs != 0 {
		t.Fatalf("%d run(s) failed; detection must be graceful", errs)
	}
	var torn uint64
	checker := 0
	for i := range r.Mixes {
		torn += r.Mixes[i].TornDeltas
		checker += r.Mixes[i].CheckerViolations
	}
	if torn == 0 {
		t.Error("value oracle saw no torn deltas under the tenant ablation")
	}
	if checker == 0 {
		t.Error("generation oracle saw no violations under the tenant ablation")
	}
}

// TestTenantCampaignDeterministicAcrossWidths runs the metrics-enabled
// tenant campaign serially and at width 4 and requires byte-identical
// reports — the fan-out merge must commute over per-tenant metrics and
// the attribution columns alike.
func TestTenantCampaignDeterministicAcrossWidths(t *testing.T) {
	render := func(parallel int) string {
		cfg := quickTenantCfg()
		cfg.Metrics = true
		cfg.Parallel = parallel
		var sb strings.Builder
		Run(cfg).Render(&sb)
		return sb.String()
	}
	serial, wide := render(1), render(4)
	if serial != wide {
		t.Errorf("tenant campaign output differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, wide)
	}
	if !strings.Contains(serial, "tenant.00.instructions") {
		t.Error("metrics block missing per-tenant counters")
	}
}

// TestTenantRenderShape pins the tenant layer's report surface: the
// attribution table, its columns, and the tenant mix names.
func TestTenantRenderShape(t *testing.T) {
	cfg := quickTenantCfg()
	cfg.Seeds = 1
	var sb strings.Builder
	Run(cfg).Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Tenant layer (3 tenants): double switches and uncore attribution",
		"vcpu-switches", "vcpu-preempts", "vcpu-migrations",
		"uncore-total", "uncore-abs-err", "err-pct",
		"tenant-baseline", "vcpu-preempt-storm", "tenant-pmi-storm",
		"vcpu-migrate+flush", "tenant-full-mix",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tenant render missing %q in:\n%s", want, out)
		}
	}
}

// TestTenantSoakClean runs the multi-tenant churn soak — every tenant
// with its own manager cloning worker waves, plus the vcpu-churn mix —
// and requires zero violations and a tenant table in the report.
func TestTenantSoakClean(t *testing.T) {
	cfg := SoakConfig{
		Seeds:      2,
		Pool:       3,
		Waves:      3,
		Iters:      30,
		ComputeK:   20,
		Cores:      2,
		WriteWidth: 11,
		Tenants:    2,
	}
	r := RunSoak(cfg)
	if errs := r.TotalRunErrors(); errs != 0 {
		t.Fatalf("%d tenant soak run(s) failed", errs)
	}
	if v := r.TotalViolations(); v != 0 {
		var sb strings.Builder
		r.Render(&sb)
		t.Fatalf("%d violation(s) in a healthy tenant soak:\n%s", v, sb.String())
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"2 tenants x pool 3",
		"Tenant layer (2 tenants)",
		"vcpu-churn",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tenant soak render missing %q in:\n%s", want, out)
		}
	}
}
