package pmu

import (
	"fmt"

	"limitsim/internal/telemetry"
)

// Ledger tracks reservations of a counted counter resource — pinned
// virtualized-counter slots, kernel-allocated virtual-counter words —
// against an optional fixed capacity. The LiMiT kernel patch pins each
// virtualized counter to a hardware index and backs it with per-thread
// kernel state; both are finite on real hardware, so allocation must
// be able to fail, and the failure must be visible, countable, and
// recoverable rather than a silent miscount. A capacity of zero or
// less means unbounded: acquisition never fails, but the accounting
// still runs, which is what the leak-freedom oracle audits.
type Ledger struct {
	capacity int
	inUse    int
	peak     int
	acquired uint64
	released uint64
	denied   uint64

	// Telemetry mirrors (nil when disabled): occupancy tracks the live
	// level and its high-water mark, deniedCtr each refused reservation.
	occupancy *telemetry.Gauge
	deniedCtr *telemetry.Counter
}

// NewLedger builds a ledger with the given capacity (<= 0: unbounded).
func NewLedger(capacity int) *Ledger { return &Ledger{capacity: capacity} }

// Instrument attaches telemetry to the ledger (either argument may be
// nil): occupancy mirrors the live reservation level and its peak,
// denied counts refused reservations. The gauge is synced to the
// current state so late attachment stays truthful.
func (l *Ledger) Instrument(occupancy *telemetry.Gauge, denied *telemetry.Counter) {
	l.occupancy = occupancy
	l.deniedCtr = denied
	if occupancy != nil {
		occupancy.Set(int64(l.inUse))
	}
	if denied != nil {
		denied.Add(l.denied)
	}
}

// TryAcquire reserves n units, reporting whether the reservation fit.
// A denied reservation acquires nothing: callers that need several
// units reserve them in one all-or-nothing call so no rollback path
// exists to get wrong.
func (l *Ledger) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	if l.capacity > 0 && l.inUse+n > l.capacity {
		l.denied++
		if l.deniedCtr != nil {
			l.deniedCtr.Inc()
		}
		return false
	}
	l.inUse += n
	l.acquired += uint64(n)
	if l.inUse > l.peak {
		l.peak = l.inUse
	}
	if l.occupancy != nil {
		l.occupancy.Add(int64(n))
	}
	return true
}

// Release returns n units to the ledger. Releasing more than is
// outstanding means the kernel double-freed a resource; that is an
// accounting bug, not a recoverable condition, so it panics.
func (l *Ledger) Release(n int) {
	if n <= 0 {
		return
	}
	if n > l.inUse {
		panic(fmt.Sprintf("pmu: ledger release of %d with only %d in use", n, l.inUse))
	}
	l.inUse -= n
	l.released += uint64(n)
	if l.occupancy != nil {
		l.occupancy.Add(-int64(n))
	}
}

// InUse returns the units currently reserved.
func (l *Ledger) InUse() int { return l.inUse }

// Peak returns the high-water mark of concurrent reservations.
func (l *Ledger) Peak() int { return l.peak }

// Capacity returns the configured capacity (<= 0: unbounded).
func (l *Ledger) Capacity() int { return l.capacity }

// Denied returns how many TryAcquire calls were refused.
func (l *Ledger) Denied() uint64 { return l.denied }

// Acquired returns the cumulative units ever reserved.
func (l *Ledger) Acquired() uint64 { return l.acquired }

// Released returns the cumulative units ever returned.
func (l *Ledger) Released() uint64 { return l.released }
