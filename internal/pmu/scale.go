package pmu

import "math/bits"

// Scale returns v × num / den computed in 128-bit integer arithmetic
// with round-to-nearest on the remainder — the multiplexing estimate
// raw × time_enabled / time_running, never float. float64 has a 53-bit
// mantissa, so the float spelling silently loses low bits once counts
// cross 2^53; every scaled-estimate path in the tree routes through
// here instead.
//
// den == 0 returns 0 (nothing ever ran: nothing measured). A quotient
// that cannot fit 64 bits saturates to ^0 rather than panicking —
// callers treat it like the error sentinel it collides with.
func Scale(v, num, den uint64) uint64 {
	if den == 0 {
		return 0
	}
	if num == den || v == 0 {
		return v
	}
	hi, lo := bits.Mul64(v, num)
	if hi >= den {
		return ^uint64(0)
	}
	q, r := bits.Div64(hi, lo, den)
	// Round half away from zero: the truncated quotient gains one when
	// the remainder is at least half the divisor.
	if r >= den-r {
		if q == ^uint64(0) {
			return q
		}
		q++
	}
	return q
}
