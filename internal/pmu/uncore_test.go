package pmu

import "testing"

// TestUncoreSharedAcrossCores: one socket block attached to two core
// PMUs accumulates both cores' events with no ring filter — the
// "cannot be per-thread virtualized" property in miniature.
func TestUncoreSharedAcrossCores(t *testing.T) {
	u := NewUncore()
	p0 := New(DefaultFeatures())
	p1 := New(DefaultFeatures())
	p0.AttachUncore(u)
	p1.AttachUncore(u)

	p0.AddEvent(RingUser, EvLLCMiss, 3)
	p1.AddEvent(RingKernel, EvLLCMiss, 4)
	p0.AddEvent(RingUser, EvCycles, 10)

	if got := u.Value(EvLLCMiss); got != 7 {
		t.Errorf("socket LLC-miss count = %d, want 7 (both cores, both rings)", got)
	}
	if got := u.Value(EvCycles); got != 10 {
		t.Errorf("socket cycle count = %d, want 10", got)
	}
	if got := u.Value(EvInstructions); got != 0 {
		t.Errorf("untouched event reads %d, want 0", got)
	}

	if p0.Uncore() != u || p1.Uncore() != u {
		t.Error("Uncore() does not return the attached block")
	}

	u.Reset()
	if u.Value(EvLLCMiss) != 0 {
		t.Error("Reset left a nonzero accumulator")
	}

	// Detach: subsequent events stay off the socket block.
	p0.AttachUncore(nil)
	p0.AddEvent(RingUser, EvLLCMiss, 5)
	if got := u.Value(EvLLCMiss); got != 0 {
		t.Errorf("detached core still fed the socket block: %d", got)
	}
}
