package pmu

import (
	"math/bits"
	"testing"
)

func TestScaleExactWhenNotMultiplexed(t *testing.T) {
	for _, v := range []uint64{0, 1, 12345, 1 << 53, ^uint64(0)} {
		if got := Scale(v, 1000, 1000); got != v {
			t.Errorf("Scale(%d, eq, eq) = %d, want identity", v, got)
		}
	}
}

func TestScaleRounding(t *testing.T) {
	cases := []struct {
		v, num, den, want uint64
	}{
		{10, 3, 2, 15},
		{10, 2, 3, 7}, // 6.67 rounds to 7
		{1, 1, 2, 1},  // 0.5 rounds up (half away from zero)
		{1, 1, 3, 0},  // 0.33 rounds down
		{0, 5, 3, 0},
		{7, 0, 3, 0},
		{42, 9, 0, 0}, // never ran: nothing measured
	}
	for _, c := range cases {
		if got := Scale(c.v, c.num, c.den); got != c.want {
			t.Errorf("Scale(%d,%d,%d) = %d, want %d", c.v, c.num, c.den, got, c.want)
		}
	}
}

// TestScaleLargeMagnitude is the regression test for the float64
// estimate path this helper replaced: above 2^53 the float mantissa
// drops low bits, so the two spellings disagree and only the integer
// one matches the 128-bit reference.
func TestScaleLargeMagnitude(t *testing.T) {
	cases := []struct {
		v, num, den uint64
	}{
		{(1 << 53) + 1, (1 << 20) + 1, 1 << 20},
		{(1 << 60) + 12345, 3_000_001, 3_000_000},
		{^uint64(0) >> 2, 5, 4},
		{123456789123456789, 987654321, 887654321},
	}
	for _, c := range cases {
		hi, lo := bits.Mul64(c.v, c.num)
		q, r := bits.Div64(hi, lo, c.den)
		if r >= c.den-r {
			q++
		}
		got := Scale(c.v, c.num, c.den)
		if got != q {
			t.Errorf("Scale(%d,%d,%d) = %d, want exact %d", c.v, c.num, c.den, got, q)
		}
		asFloat := uint64(float64(c.v) * float64(c.num) / float64(c.den))
		if asFloat == q {
			t.Errorf("case (%d,%d,%d) does not expose the float64 precision loss", c.v, c.num, c.den)
		}
	}
}

func TestScaleOverflowSaturates(t *testing.T) {
	if got := Scale(^uint64(0), ^uint64(0), 2); got != ^uint64(0) {
		t.Errorf("overflowing Scale = %d, want saturation to ^0", got)
	}
}
