package pmu

import (
	"math/rand"
	"testing"
)

// naivePMU mirrors the pre-dispatch-table AddEvent: a linear scan over
// every counter with per-counter filter checks. The dispatch table
// must be observationally identical to it.
type naivePMU struct {
	cfgs    []CounterConfig
	values  []uint64
	pending uint64
	mask    uint64
	truth   [NumEvents][2]uint64
}

func newNaive(f Features) *naivePMU {
	mask := ^uint64(0)
	if f.CounterWidth < 64 {
		mask = (1 << uint(f.CounterWidth)) - 1
	}
	return &naivePMU{
		cfgs:   make([]CounterConfig, f.NumCounters),
		values: make([]uint64, f.NumCounters),
		mask:   mask,
	}
}

func (np *naivePMU) configure(idx int, cfg CounterConfig) {
	np.cfgs[idx] = cfg
	np.pending &^= 1 << uint(idx)
}

func (np *naivePMU) write(idx int, v uint64, writeWidth int) {
	wmask := ^uint64(0)
	if writeWidth < 64 {
		wmask = (1 << uint(writeWidth)) - 1
	}
	np.values[idx] = v & wmask
	np.pending &^= 1 << uint(idx)
}

func (np *naivePMU) addEvent(ring Ring, ev Event, n uint64) {
	if n == 0 {
		return
	}
	np.truth[ev][ring] += n
	for i := range np.cfgs {
		cfg := np.cfgs[i]
		if cfg.Event != ev || !cfg.counts(ring) {
			continue
		}
		before := np.values[i]
		np.values[i] = (before + n) & np.mask
		if ob := cfg.OverflowBit; ob >= 0 && ob < 64 {
			threshold := uint64(1) << uint(ob)
			if (before < threshold && np.values[i] >= threshold) || np.values[i] < before {
				np.pending |= 1 << uint(i)
			}
		}
	}
}

// TestDispatchRebuildOnReconfigure pins that Configure — the single
// mutation point the kernel's context-switch, PMI and group-rotation
// paths all go through — rebuilds the dispatch table.
func TestDispatchRebuildOnReconfigure(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, CounterConfig{Event: EvLoads, CountUser: true, Enabled: true, OverflowBit: -1})
	p.AddEvent(RingUser, EvLoads, 5)
	if got := p.Read(0); got != 5 {
		t.Fatalf("watched event did not advance counter: %d", got)
	}

	// Reprogram to a different event, as group rotation does.
	p.Configure(0, CounterConfig{Event: EvStores, CountUser: true, Enabled: true, OverflowBit: -1})
	p.AddEvent(RingUser, EvLoads, 7)
	if got := p.Read(0); got != 5 {
		t.Fatalf("stale dispatch entry: loads advanced a stores counter to %d", got)
	}
	p.AddEvent(RingUser, EvStores, 3)
	if got := p.Read(0); got != 8 {
		t.Fatalf("reprogrammed event did not advance counter: %d", got)
	}

	// Disable, as the context-switch save path does.
	p.Configure(0, CounterConfig{Enabled: false, OverflowBit: -1})
	p.AddEvent(RingUser, EvStores, 100)
	if got := p.Read(0); got != 8 {
		t.Fatalf("disabled counter advanced to %d", got)
	}

	// Ring filters map to separate dispatch rows.
	p.Configure(1, CounterConfig{Event: EvCycles, CountKernel: true, Enabled: true, OverflowBit: -1})
	p.AddEvent(RingUser, EvCycles, 9)
	if got := p.Read(1); got != 0 {
		t.Fatalf("kernel-only counter saw user events: %d", got)
	}
	p.AddEvent(RingKernel, EvCycles, 4)
	if got := p.Read(1); got != 4 {
		t.Fatalf("kernel-only counter missed kernel events: %d", got)
	}
}

// TestDispatchEquivalenceRandomized drives the real PMU and the naive
// reference through an identical random stream of Configure / Write /
// AddEvent operations — the same shapes the kernel's save/restore,
// overflow and multiplexing rotation paths produce — and demands
// identical values, pending masks and ground truth at every step.
func TestDispatchEquivalenceRandomized(t *testing.T) {
	feats := DefaultFeatures()
	p := New(feats)
	np := newNaive(feats)
	rng := rand.New(rand.NewSource(0xd15c)) // deterministic

	randCfg := func() CounterConfig {
		return CounterConfig{
			Event:       Event(rng.Intn(int(NumEvents))),
			CountUser:   rng.Intn(2) == 0,
			CountKernel: rng.Intn(2) == 0,
			Enabled:     rng.Intn(4) != 0,
			OverflowBit: []int{-1, 4, 10, 31}[rng.Intn(4)],
		}
	}

	for step := 0; step < 20_000; step++ {
		switch rng.Intn(10) {
		case 0, 1: // reprogram (context switch in / rotation)
			idx, cfg := rng.Intn(feats.NumCounters), randCfg()
			p.Configure(idx, cfg)
			np.configure(idx, cfg)
		case 2: // restore a saved value
			idx, v := rng.Intn(feats.NumCounters), rng.Uint64()>>uint(rng.Intn(64))
			p.Write(idx, v)
			np.write(idx, v, feats.WriteWidth)
		default: // events, occasionally in large steps
			ring := Ring(rng.Intn(2))
			ev := Event(rng.Intn(int(NumEvents)))
			n := uint64(rng.Intn(3))
			if rng.Intn(20) == 0 {
				n = uint64(rng.Intn(5000))
			}
			p.AddEvent(ring, ev, n)
			np.addEvent(ring, ev, n)
		}

		for i := 0; i < feats.NumCounters; i++ {
			if p.Read(i) != np.values[i] {
				t.Fatalf("step %d: counter %d diverged: dispatch %d, naive %d", step, i, p.Read(i), np.values[i])
			}
		}
		if p.pending != np.pending {
			t.Fatalf("step %d: pending mask diverged: dispatch %#x, naive %#x", step, p.pending, np.pending)
		}
	}
	for ev := Event(0); ev < NumEvents; ev++ {
		for ring := Ring(0); ring < 2; ring++ {
			if p.GroundTruth(ev, ring) != np.truth[ev][ring] {
				t.Fatalf("ground truth diverged for %v/%v", ev, ring)
			}
		}
	}
}
