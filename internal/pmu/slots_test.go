package pmu

import "testing"

func TestLedgerBoundedAcquireRelease(t *testing.T) {
	l := NewLedger(3)
	if !l.TryAcquire(2) {
		t.Fatal("acquire 2/3 refused")
	}
	if l.TryAcquire(2) {
		t.Fatal("acquire 4/3 allowed")
	}
	if l.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", l.Denied())
	}
	if !l.TryAcquire(1) {
		t.Fatal("acquire 3/3 refused — the denied call must not have reserved anything")
	}
	if l.InUse() != 3 || l.Peak() != 3 {
		t.Fatalf("inUse=%d peak=%d, want 3/3", l.InUse(), l.Peak())
	}
	l.Release(3)
	if l.InUse() != 0 {
		t.Fatalf("inUse=%d after full release, want 0", l.InUse())
	}
	if !l.TryAcquire(3) {
		t.Fatal("released units not reusable")
	}
	if l.Acquired() != 6 || l.Released() != 3 {
		t.Fatalf("acquired=%d released=%d, want 6/3", l.Acquired(), l.Released())
	}
}

func TestLedgerUnboundedStillAccounts(t *testing.T) {
	l := NewLedger(0)
	if !l.TryAcquire(1000) {
		t.Fatal("unbounded ledger refused an acquire")
	}
	if l.InUse() != 1000 || l.Peak() != 1000 {
		t.Fatalf("inUse=%d peak=%d, want 1000/1000", l.InUse(), l.Peak())
	}
	l.Release(999)
	if l.InUse() != 1 {
		t.Fatalf("inUse=%d, want 1 — unbounded ledgers must still count, the leak oracle reads them", l.InUse())
	}
}

func TestLedgerOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double-free slipped through the ledger")
		}
	}()
	l := NewLedger(2)
	l.TryAcquire(1)
	l.Release(2)
}
