package pmu

import "testing"

// BenchmarkAddEventWatched measures the per-event cost when a counter
// is programmed for the event: dispatch must find and advance it.
func BenchmarkAddEventWatched(b *testing.B) {
	p := New(DefaultFeatures())
	p.Configure(0, CounterConfig{Event: EvCycles, CountUser: true, Enabled: true, OverflowBit: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddEvent(RingUser, EvCycles, 3)
	}
}

// BenchmarkAddEventUnwatched measures the common hot-loop case: the
// event occurs but no programmed counter selects it, so only ground
// truth advances. This path runs several times per simulated
// instruction and dominates interpreter throughput.
func BenchmarkAddEventUnwatched(b *testing.B) {
	p := New(DefaultFeatures())
	p.Configure(0, CounterConfig{Event: EvCycles, CountUser: true, Enabled: true, OverflowBit: -1})
	p.Configure(1, CounterConfig{Event: EvInstructions, CountUser: true, Enabled: true, OverflowBit: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddEvent(RingUser, EvLoads, 1)
	}
}

// BenchmarkAddEventWrongRing: a counter watches the event but filters
// out the ring — must cost the same as unwatched.
func BenchmarkAddEventWrongRing(b *testing.B) {
	p := New(DefaultFeatures())
	p.Configure(0, CounterConfig{Event: EvCycles, CountUser: true, Enabled: true, OverflowBit: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddEvent(RingKernel, EvCycles, 7)
	}
}
