package pmu

import (
	"testing"
	"testing/quick"
)

func userCounter(ev Event, overflowBit int) CounterConfig {
	return CounterConfig{Event: ev, CountUser: true, Enabled: true, OverflowBit: overflowBit}
}

func TestCountsOnlyConfiguredEvent(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, userCounter(EvLoads, -1))
	p.AddEvent(RingUser, EvLoads, 3)
	p.AddEvent(RingUser, EvStores, 5)
	if got := p.Read(0); got != 3 {
		t.Errorf("counter 0 = %d, want 3", got)
	}
}

func TestRingFilter(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, CounterConfig{Event: EvCycles, CountUser: true, Enabled: true, OverflowBit: -1})
	p.Configure(1, CounterConfig{Event: EvCycles, CountKernel: true, Enabled: true, OverflowBit: -1})
	p.Configure(2, CounterConfig{Event: EvCycles, CountUser: true, CountKernel: true, Enabled: true, OverflowBit: -1})
	p.AddEvent(RingUser, EvCycles, 10)
	p.AddEvent(RingKernel, EvCycles, 7)
	if got := p.Read(0); got != 10 {
		t.Errorf("user-only counter = %d, want 10", got)
	}
	if got := p.Read(1); got != 7 {
		t.Errorf("kernel-only counter = %d, want 7", got)
	}
	if got := p.Read(2); got != 17 {
		t.Errorf("both-rings counter = %d, want 17", got)
	}
}

func TestDisabledCounterStays(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, CounterConfig{Event: EvCycles, CountUser: true, Enabled: false, OverflowBit: -1})
	p.AddEvent(RingUser, EvCycles, 5)
	if got := p.Read(0); got != 0 {
		t.Errorf("disabled counter advanced to %d", got)
	}
}

func TestWriteWidthTruncation(t *testing.T) {
	p := New(DefaultFeatures()) // WriteWidth 31
	p.Write(0, 1<<33|42)
	if got := p.Read(0); got != 42 {
		t.Errorf("write should keep only low 31 bits: got %#x, want 42", got)
	}
	if p.WriteLimit() != 1<<31 {
		t.Errorf("WriteLimit %#x, want 2^31", p.WriteLimit())
	}
}

func Test64BitWrites(t *testing.T) {
	p := New(Enhanced64Bit())
	v := uint64(1<<52 | 99)
	p.Write(0, v)
	if got := p.Read(0); got != v {
		t.Errorf("e1 write lost bits: got %#x, want %#x", got, v)
	}
}

func TestCounterWidthWrap(t *testing.T) {
	p := New(DefaultFeatures()) // 48-bit counters
	p.Configure(0, userCounter(EvCycles, -1))
	p.Write(0, (1<<31)-1)
	// Push past 48 bits by accumulating.
	for i := 0; i < 10; i++ {
		p.AddEvent(RingUser, EvCycles, 1<<44)
	}
	if got := p.Read(0); got>>48 != 0 {
		t.Errorf("counter exceeded its 48-bit width: %#x", got)
	}
}

func TestOverflowCrossingDetection(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, userCounter(EvCycles, 4)) // threshold 16
	p.AddEvent(RingUser, EvCycles, 15)
	if p.HasPending() {
		t.Fatal("no overflow before crossing")
	}
	p.AddEvent(RingUser, EvCycles, 1)
	if !p.HasPending() {
		t.Fatal("crossing the threshold must raise an interrupt")
	}
	if mask := p.TakePendingOverflows(); mask != 1 {
		t.Errorf("pending mask %b, want 1", mask)
	}
	if p.HasPending() {
		t.Error("TakePendingOverflows must clear the pending set")
	}
	// Staying above the threshold must not re-raise.
	p.AddEvent(RingUser, EvCycles, 1)
	if p.HasPending() {
		t.Error("already-overflowed counter re-raised without re-arming")
	}
}

func TestOverflowBigStepCrossing(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, userCounter(EvCycles, 10)) // threshold 1024
	p.AddEvent(RingUser, EvCycles, 5000)      // single large step across
	if !p.HasPending() {
		t.Error("large single-step crossing must raise an interrupt")
	}
}

func TestWriteClearsPending(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, userCounter(EvCycles, 4))
	p.AddEvent(RingUser, EvCycles, 20)
	p.Write(0, 0)
	if p.HasPending() {
		t.Error("re-arming write must clear pending overflow")
	}
}

func TestConfigureClearsPendingForThatCounterOnly(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, userCounter(EvCycles, 4))
	p.Configure(1, userCounter(EvCycles, 4))
	p.AddEvent(RingUser, EvCycles, 20)
	p.Configure(0, userCounter(EvLoads, 4))
	if mask := p.TakePendingOverflows(); mask != 2 {
		t.Errorf("mask %b, want only counter 1 pending", mask)
	}
}

func TestDestructiveRead(t *testing.T) {
	p := New(EnhancedDestructive())
	p.Configure(0, userCounter(EvCycles, -1))
	p.AddEvent(RingUser, EvCycles, 123)
	if got := p.ReadAndReset(0); got != 123 {
		t.Errorf("destructive read %d, want 123", got)
	}
	if got := p.Read(0); got != 0 {
		t.Errorf("counter after destructive read %d, want 0", got)
	}
}

func TestDestructiveReadPanicsWithoutFeature(t *testing.T) {
	p := New(DefaultFeatures())
	defer func() {
		if recover() == nil {
			t.Error("destructive read without the feature must panic")
		}
	}()
	p.ReadAndReset(0)
}

func TestGroundTruthUnaffectedByProgramming(t *testing.T) {
	p := New(DefaultFeatures())
	p.AddEvent(RingUser, EvL1DMiss, 4)
	p.AddEvent(RingKernel, EvL1DMiss, 2)
	if got := p.GroundTruth(EvL1DMiss, RingUser); got != 4 {
		t.Errorf("user ground truth %d, want 4", got)
	}
	if got := p.GroundTruthTotal(EvL1DMiss); got != 6 {
		t.Errorf("total ground truth %d, want 6", got)
	}
	p.ResetGroundTruth()
	if p.GroundTruthTotal(EvL1DMiss) != 0 {
		t.Error("reset did not clear ground truth")
	}
}

func TestCounterSumInvariant(t *testing.T) {
	// Property: a both-rings counter always equals ground truth total
	// (modulo width), regardless of the event mix.
	p := New(DefaultFeatures())
	p.Configure(0, CounterConfig{Event: EvInstructions, CountUser: true, CountKernel: true, Enabled: true, OverflowBit: -1})
	f := func(deltas []uint16, kernel bool) bool {
		for _, d := range deltas {
			ring := RingUser
			if kernel {
				ring = RingKernel
			}
			p.AddEvent(ring, EvInstructions, uint64(d))
			kernel = !kernel
		}
		return p.Read(0) == p.GroundTruthTotal(EvInstructions)&((1<<48)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndexBoundsPanic(t *testing.T) {
	p := New(DefaultFeatures())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range counter index must panic")
		}
	}()
	p.Read(99)
}

func TestEventAndRingStrings(t *testing.T) {
	if EvCycles.String() != "cycles" || EvLLCMiss.String() != "llc-miss" {
		t.Error("event names wrong")
	}
	if RingUser.String() != "user" || RingKernel.String() != "kernel" {
		t.Error("ring names wrong")
	}
}

func TestFeaturePresets(t *testing.T) {
	if f := Enhanced64Bit(); f.CounterWidth != 64 || f.WriteWidth != 64 {
		t.Errorf("e1 preset wrong: %+v", f)
	}
	if f := EnhancedDestructive(); !f.DestructiveReads {
		t.Errorf("e2 preset wrong: %+v", f)
	}
	if f := EnhancedHWVirtualization(); !f.HardwareVirtualization {
		t.Errorf("e3 preset wrong: %+v", f)
	}
}

func TestAddEventZeroIsFree(t *testing.T) {
	p := New(DefaultFeatures())
	p.Configure(0, userCounter(EvCycles, 0)) // threshold 1: any event overflows
	p.AddEvent(RingUser, EvCycles, 0)
	if p.HasPending() || p.Read(0) != 0 {
		t.Error("zero-count AddEvent must be a no-op")
	}
}
