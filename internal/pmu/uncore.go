package pmu

// Uncore models a socket-level shared-resource counter block: one set
// of event accumulators fed by every core on the socket. Unlike the
// per-core counters it has no ring filter, no overflow interrupt, and
// — crucially — no notion of which thread (or tenant) caused an event,
// so it cannot be virtualized by the kernel's save/restore path. Any
// per-tenant attribution of uncore counts is therefore a *policy*
// (the kernel applies share-by-cycles) whose error against true
// causation must be measured rather than assumed zero.
type Uncore struct {
	values [NumEvents]uint64
}

// NewUncore returns an empty socket counter block.
func NewUncore() *Uncore { return &Uncore{} }

// add accumulates n occurrences of ev. Called from PMU.AddEvent on
// every attached core.
func (u *Uncore) add(ev Event, n uint64) { u.values[ev] += n }

// Value returns the socket-wide count of ev since reset.
func (u *Uncore) Value(ev Event) uint64 { return u.values[ev] }

// Reset zeroes all accumulators.
func (u *Uncore) Reset() { u.values = [NumEvents]uint64{} }

// AttachUncore connects this core's PMU to a shared socket counter
// block; every subsequent event is mirrored into it. Pass nil to
// detach. Attachment is flagged in every dispatch-table entry (see
// uncoreBit) so AddEvent's fast path stays a single load and branch.
func (p *PMU) AttachUncore(u *Uncore) {
	p.syncRetire() // deferred retirements predate the attachment
	p.uncore = u
	for i := range p.events {
		if u != nil {
			p.events[i].watchers |= uncoreBit
		} else {
			p.events[i].watchers &^= uncoreBit
		}
	}
}

// Uncore returns the attached socket counter block (nil if none).
func (p *PMU) Uncore() *Uncore { return p.uncore }
