// Package pmu models a per-core performance monitoring unit: a small
// number of programmable hardware counters with event selection,
// privilege-ring filtering, overflow interrupts, and the write-width
// restriction of real x86 PMUs that motivates much of the reproduced
// paper's design.
//
// Two hardware quirks are modeled faithfully because LiMiT's design
// depends on them:
//
//  1. Counters are CounterWidth bits wide (48 by default), but a
//     software write can only set the low WriteWidth bits (31 by
//     default, matching Intel's sign-extended 32-bit MSR writes). The
//     kernel therefore cannot restore a large counter value on context
//     switch; LiMiT keeps hardware counts below 2^31 by folding
//     overflow into a 64-bit virtual counter in user memory.
//  2. Counter overflow past a configurable bit raises an interrupt
//     (PMI), which can land between the instructions of a userspace
//     read sequence.
//
// The paper's three proposed hardware enhancements are available as
// feature flags: 64-bit writable counters (e1), destructive reads (e2),
// and hardware counter virtualization (e3, consumed by the kernel's
// context-switch path).
package pmu

import "fmt"

// Event identifies a countable architectural event.
type Event uint8

// Countable events.
const (
	EvCycles Event = iota
	EvInstructions
	EvLoads
	EvStores
	EvL1DMiss
	EvL2Miss
	EvLLCMiss
	EvBranches
	EvBranchMiss
	EvAtomics
	EvSyscalls
	EvCtxSwitches
	EvDTLBMiss
	EvDTLBWalk // full TLB miss requiring a page walk

	// NumEvents is the number of distinct events.
	NumEvents
)

var eventNames = [NumEvents]string{
	EvCycles:       "cycles",
	EvInstructions: "instructions",
	EvLoads:        "loads",
	EvStores:       "stores",
	EvL1DMiss:      "l1d-miss",
	EvL2Miss:       "l2-miss",
	EvLLCMiss:      "llc-miss",
	EvBranches:     "branches",
	EvBranchMiss:   "branch-miss",
	EvAtomics:      "atomics",
	EvSyscalls:     "syscalls",
	EvCtxSwitches:  "ctx-switches",
	EvDTLBMiss:     "dtlb-miss",
	EvDTLBWalk:     "dtlb-walk",
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Ring is the privilege level at which events occur.
type Ring uint8

// Privilege rings.
const (
	RingUser Ring = iota
	RingKernel
)

func (r Ring) String() string {
	if r == RingUser {
		return "user"
	}
	return "kernel"
}

// CounterConfig programs one hardware counter.
type CounterConfig struct {
	Event       Event
	CountUser   bool
	CountKernel bool
	Enabled     bool
	// OverflowBit raises an interrupt when the counter value crosses
	// 1<<OverflowBit. Negative disables overflow interrupts.
	OverflowBit int
}

func (c CounterConfig) counts(r Ring) bool {
	if !c.Enabled {
		return false
	}
	if r == RingUser {
		return c.CountUser
	}
	return c.CountKernel
}

// Features describes the PMU's hardware capability set.
type Features struct {
	// NumCounters is the number of programmable counters.
	NumCounters int
	// CounterWidth is the counter width in bits (48 on 2011 x86).
	CounterWidth int
	// WriteWidth is how many low bits a software counter write can set
	// (31 on Intel: 32-bit sign-extended MSR writes). Enhancement e1
	// raises both widths to 64.
	WriteWidth int
	// DestructiveReads enables read-and-reset rdpmc (enhancement e2).
	DestructiveReads bool
	// HardwareVirtualization tags counter state per thread so the
	// kernel context switch need not save/restore counters
	// (enhancement e3). The PMU itself only advertises the flag; the
	// kernel consumes it.
	HardwareVirtualization bool
}

// DefaultFeatures matches a 2011-era x86 PMU: 4 programmable 48-bit
// counters with 31-bit writes and no enhancements.
func DefaultFeatures() Features {
	return Features{NumCounters: 4, CounterWidth: 48, WriteWidth: 31}
}

// Enhanced64Bit returns DefaultFeatures with enhancement e1 (fully
// writable 64-bit counters).
func Enhanced64Bit() Features {
	f := DefaultFeatures()
	f.CounterWidth = 64
	f.WriteWidth = 64
	return f
}

// EnhancedDestructive returns DefaultFeatures with enhancement e2.
func EnhancedDestructive() Features {
	f := DefaultFeatures()
	f.DestructiveReads = true
	return f
}

// EnhancedHWVirtualization returns DefaultFeatures with enhancement e3.
func EnhancedHWVirtualization() Features {
	f := DefaultFeatures()
	f.HardwareVirtualization = true
	return f
}

type counter struct {
	cfg   CounterConfig
	value uint64
}

// PMU is one core's performance monitoring unit.
type PMU struct {
	feats    Features
	counters []counter
	mask     uint64 // value mask from CounterWidth
	pending  uint64 // bitmask of counters with a pending overflow interrupt

	// groundTruth accumulates every event per ring regardless of
	// counter programming. It models an omniscient observer and is
	// used by experiments to compute true totals that the paper
	// obtained from long calibration runs.
	groundTruth [NumEvents][2]uint64

	// uncore, when attached, receives a copy of every event. Several
	// cores on one socket share a single Uncore, modeling socket-level
	// resources that cannot be filtered per thread or ring.
	uncore *Uncore
}

// New returns a PMU with the given features. All counters start
// disabled and zero.
func New(f Features) *PMU {
	if f.NumCounters <= 0 {
		panic("pmu: NumCounters must be positive")
	}
	if f.CounterWidth <= 0 || f.CounterWidth > 64 {
		panic("pmu: CounterWidth out of range")
	}
	var mask uint64
	if f.CounterWidth == 64 {
		mask = ^uint64(0)
	} else {
		mask = (1 << uint(f.CounterWidth)) - 1
	}
	return &PMU{
		feats:    f,
		counters: make([]counter, f.NumCounters),
		mask:     mask,
	}
}

// Features returns the PMU's capability set.
func (p *PMU) Features() Features { return p.feats }

// NumCounters returns the number of programmable counters.
func (p *PMU) NumCounters() int { return len(p.counters) }

func (p *PMU) check(idx int) {
	if idx < 0 || idx >= len(p.counters) {
		panic(fmt.Sprintf("pmu: counter index %d out of range [0,%d)", idx, len(p.counters)))
	}
}

// Configure programs counter idx. Programming clears any pending
// overflow on that counter but preserves its value (software writes the
// value separately, as on real hardware).
func (p *PMU) Configure(idx int, cfg CounterConfig) {
	p.check(idx)
	p.counters[idx].cfg = cfg
	p.pending &^= 1 << uint(idx)
}

// Config returns counter idx's current programming.
func (p *PMU) Config(idx int) CounterConfig {
	p.check(idx)
	return p.counters[idx].cfg
}

// Read returns counter idx's current value (rdpmc and kernel MSR reads
// both see this).
func (p *PMU) Read(idx int) uint64 {
	p.check(idx)
	return p.counters[idx].value
}

// ReadAndReset destructively reads counter idx (enhancement e2). It
// panics if the feature is absent; callers gate on Features.
func (p *PMU) ReadAndReset(idx int) uint64 {
	if !p.feats.DestructiveReads {
		panic("pmu: destructive read without DestructiveReads feature")
	}
	p.check(idx)
	v := p.counters[idx].value
	p.counters[idx].value = 0
	p.pending &^= 1 << uint(idx)
	return v
}

// Write sets counter idx's value. Only the low WriteWidth bits are
// honored, mirroring Intel's MSR write restriction; higher bits are
// silently dropped (the caller — the kernel — is responsible for
// keeping values in range, which is exactly the constraint LiMiT's
// overflow folding exists to satisfy).
func (p *PMU) Write(idx int, v uint64) {
	p.check(idx)
	var wmask uint64
	if p.feats.WriteWidth >= 64 {
		wmask = ^uint64(0)
	} else {
		wmask = (1 << uint(p.feats.WriteWidth)) - 1
	}
	p.counters[idx].value = v & wmask
	p.pending &^= 1 << uint(idx)
}

// WriteLimit returns the exclusive upper bound on values Write can
// represent.
func (p *PMU) WriteLimit() uint64 {
	if p.feats.WriteWidth >= 64 {
		return ^uint64(0)
	}
	return 1 << uint(p.feats.WriteWidth)
}

// AddEvent advances every enabled counter whose event and ring filter
// match by n, records ground truth, and accumulates pending overflow
// interrupts for counters that crossed their overflow threshold.
func (p *PMU) AddEvent(ring Ring, ev Event, n uint64) {
	if n == 0 {
		return
	}
	p.groundTruth[ev][ring] += n
	if p.uncore != nil {
		p.uncore.add(ev, n)
	}
	for i := range p.counters {
		c := &p.counters[i]
		if c.cfg.Event != ev || !c.cfg.counts(ring) {
			continue
		}
		before := c.value
		c.value = (c.value + n) & p.mask
		if ob := c.cfg.OverflowBit; ob >= 0 && ob < 64 {
			threshold := uint64(1) << uint(ob)
			// Crossing detection: the counter moved from below the
			// threshold to at-or-above it (or wrapped the full width).
			if (before < threshold && c.value >= threshold) || c.value < before {
				p.pending |= 1 << uint(i)
			}
		}
	}
}

// TakePendingOverflows returns and clears the bitmask of counters with
// pending overflow interrupts. The machine loop calls this after every
// instruction and routes nonzero masks to the kernel's PMI handler.
func (p *PMU) TakePendingOverflows() uint64 {
	m := p.pending
	p.pending = 0
	return m
}

// HasPending reports whether any overflow interrupt is pending without
// consuming it.
func (p *PMU) HasPending() bool { return p.pending != 0 }

// GroundTruth returns the omniscient count of ev in ring since reset.
func (p *PMU) GroundTruth(ev Event, ring Ring) uint64 {
	return p.groundTruth[ev][ring]
}

// GroundTruthTotal returns user+kernel ground truth for ev.
func (p *PMU) GroundTruthTotal(ev Event) uint64 {
	return p.groundTruth[ev][RingUser] + p.groundTruth[ev][RingKernel]
}

// ResetGroundTruth zeroes the omniscient accumulators (counters are
// unaffected).
func (p *PMU) ResetGroundTruth() { p.groundTruth = [NumEvents][2]uint64{} }
