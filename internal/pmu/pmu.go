// Package pmu models a per-core performance monitoring unit: a small
// number of programmable hardware counters with event selection,
// privilege-ring filtering, overflow interrupts, and the write-width
// restriction of real x86 PMUs that motivates much of the reproduced
// paper's design.
//
// Two hardware quirks are modeled faithfully because LiMiT's design
// depends on them:
//
//  1. Counters are CounterWidth bits wide (48 by default), but a
//     software write can only set the low WriteWidth bits (31 by
//     default, matching Intel's sign-extended 32-bit MSR writes). The
//     kernel therefore cannot restore a large counter value on context
//     switch; LiMiT keeps hardware counts below 2^31 by folding
//     overflow into a 64-bit virtual counter in user memory.
//  2. Counter overflow past a configurable bit raises an interrupt
//     (PMI), which can land between the instructions of a userspace
//     read sequence.
//
// The paper's three proposed hardware enhancements are available as
// feature flags: 64-bit writable counters (e1), destructive reads (e2),
// and hardware counter virtualization (e3, consumed by the kernel's
// context-switch path).
package pmu

import (
	"fmt"
	"math/bits"
)

// Event identifies a countable architectural event.
type Event uint8

// Countable events.
const (
	EvCycles Event = iota
	EvInstructions
	EvLoads
	EvStores
	EvL1DMiss
	EvL2Miss
	EvLLCMiss
	EvBranches
	EvBranchMiss
	EvAtomics
	EvSyscalls
	EvCtxSwitches
	EvDTLBMiss
	EvDTLBWalk // full TLB miss requiring a page walk

	// NumEvents is the number of distinct events.
	NumEvents
)

var eventNames = [NumEvents]string{
	EvCycles:       "cycles",
	EvInstructions: "instructions",
	EvLoads:        "loads",
	EvStores:       "stores",
	EvL1DMiss:      "l1d-miss",
	EvL2Miss:       "l2-miss",
	EvLLCMiss:      "llc-miss",
	EvBranches:     "branches",
	EvBranchMiss:   "branch-miss",
	EvAtomics:      "atomics",
	EvSyscalls:     "syscalls",
	EvCtxSwitches:  "ctx-switches",
	EvDTLBMiss:     "dtlb-miss",
	EvDTLBWalk:     "dtlb-walk",
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// uncoreBit is set in every dispatch-table entry while an Uncore is
// attached, folding "is anything mirrored to the socket block?" into
// the same load that answers "does any counter watch this event?".
// Counter indices are therefore capped at 63 (enforced by New).
const uncoreBit = uint64(1) << 63

// eventEntry is one (event, ring) slot of the dispatch table: the
// omniscient accumulator and the mask of parties that must also see
// the event (watching counters, plus uncoreBit).
type eventEntry struct {
	truth    uint64
	watchers uint64
}

// Ring is the privilege level at which events occur.
type Ring uint8

// Privilege rings.
const (
	RingUser Ring = iota
	RingKernel
)

func (r Ring) String() string {
	if r == RingUser {
		return "user"
	}
	return "kernel"
}

// CounterConfig programs one hardware counter.
type CounterConfig struct {
	Event       Event
	CountUser   bool
	CountKernel bool
	Enabled     bool
	// OverflowBit raises an interrupt when the counter value crosses
	// 1<<OverflowBit. Negative disables overflow interrupts.
	OverflowBit int
}

func (c CounterConfig) counts(r Ring) bool {
	if !c.Enabled {
		return false
	}
	if r == RingUser {
		return c.CountUser
	}
	return c.CountKernel
}

// Features describes the PMU's hardware capability set.
type Features struct {
	// NumCounters is the number of programmable counters.
	NumCounters int
	// CounterWidth is the counter width in bits (48 on 2011 x86).
	CounterWidth int
	// WriteWidth is how many low bits a software counter write can set
	// (31 on Intel: 32-bit sign-extended MSR writes). Enhancement e1
	// raises both widths to 64.
	WriteWidth int
	// DestructiveReads enables read-and-reset rdpmc (enhancement e2).
	DestructiveReads bool
	// HardwareVirtualization tags counter state per thread so the
	// kernel context switch need not save/restore counters
	// (enhancement e3). The PMU itself only advertises the flag; the
	// kernel consumes it.
	HardwareVirtualization bool
}

// DefaultFeatures matches a 2011-era x86 PMU: 4 programmable 48-bit
// counters with 31-bit writes and no enhancements.
func DefaultFeatures() Features {
	return Features{NumCounters: 4, CounterWidth: 48, WriteWidth: 31}
}

// Enhanced64Bit returns DefaultFeatures with enhancement e1 (fully
// writable 64-bit counters).
func Enhanced64Bit() Features {
	f := DefaultFeatures()
	f.CounterWidth = 64
	f.WriteWidth = 64
	return f
}

// EnhancedDestructive returns DefaultFeatures with enhancement e2.
func EnhancedDestructive() Features {
	f := DefaultFeatures()
	f.DestructiveReads = true
	return f
}

// EnhancedHWVirtualization returns DefaultFeatures with enhancement e3.
func EnhancedHWVirtualization() Features {
	f := DefaultFeatures()
	f.HardwareVirtualization = true
	return f
}

type counter struct {
	// value and threshold lead the struct: bump touches only these two
	// fields once per watched event per instruction, so they sit at
	// offset 0/8 of the slot with cfg's cold bytes behind them.
	value uint64
	// threshold is 1<<cfg.OverflowBit, precomputed by Configure; zero
	// means overflow interrupts are disabled (no valid threshold is 0,
	// since OverflowBit 0 yields 1).
	threshold uint64
	cfg       CounterConfig
}

// PMU is one core's performance monitoring unit.
type PMU struct {
	feats    Features
	counters []counter
	mask     uint64 // value mask from CounterWidth
	pending  uint64 // bitmask of counters with a pending overflow interrupt

	// events is the per-(event, ring) dispatch table.
	//
	// truth accumulates every event regardless of counter programming:
	// an omniscient observer, used by experiments to compute true
	// totals that the paper obtained from long calibration runs.
	//
	// watchers is the bitmask of enabled counters whose event selector
	// and ring filter accept (ev, ring), plus uncoreBit when a socket
	// counter block is attached. It is rebuilt by Configure — the only
	// place a counter's programming changes — so AddEvent's common
	// case ("no counter watches this event") is a single indexed
	// entry: one add, one load, one branch, instead of a scan over
	// every counter. The machine loop calls AddEvent several times per
	// simulated instruction, which made the scan the interpreter's
	// hottest path; sharing one entry for truth and watchers keeps
	// AddEvent within the inlining budget.
	// Laid out flat with the user ring in the first NumEvents slots:
	// AddUser then indexes with ev alone, which is what lets it fit
	// the inlining budget.
	events [2 * int(NumEvents)]eventEntry

	// Deferred retirement accounting. AddRetire runs once per simulated
	// instruction; when counters watch the retirement pair, bumping them
	// every step dominated the interpreter profile. Instead, while
	// deferBudget is nonzero AddRetire accumulates into defRetire
	// (packed sums), and flushRetire folds them in later — exact,
	// because counter values are modular sums and the budget is sized so
	// that no watched counter can cross its overflow threshold (or wrap)
	// inside the window, so no pending bit can be produced early or
	// late. Every observer of counter values, ground truth, or
	// programming flushes first (Read, Write, Configure, GroundTruth*,
	// and any kernel/user add to the retirement events, whose watchers
	// may share counters with the deferred stream); PMI-precision paths
	// degrade to per-step bumping automatically as a threshold nears,
	// because the recomputed budget reaches zero.
	// defRetire packs the whole deferral state into one word so the
	// per-instruction fast path is a single load and store: bits 48+
	// hold the remaining budget, bits [24,48) the deferred instruction
	// sum, bits [0,24) the deferred cycle sum. Budget and per-step
	// deltas are capped at deferStepMask (4095), so each 24-bit lane
	// tops out at 4095*4095 < 2^24 and lanes never carry.
	defRetire uint64

	// uncore, when attached, receives a copy of every event. Several
	// cores on one socket share a single Uncore, modeling socket-level
	// resources that cannot be filtered per thread or ring.
	uncore *Uncore
}

// New returns a PMU with the given features. All counters start
// disabled and zero.
func New(f Features) *PMU {
	if f.NumCounters <= 0 {
		panic("pmu: NumCounters must be positive")
	}
	if f.NumCounters > 63 {
		// Counter index i occupies bit i of the dispatch-table masks;
		// bit 63 is reserved for the uncore-attached flag.
		panic("pmu: NumCounters must be at most 63")
	}
	if f.CounterWidth <= 0 || f.CounterWidth > 64 {
		panic("pmu: CounterWidth out of range")
	}
	var mask uint64
	if f.CounterWidth == 64 {
		mask = ^uint64(0)
	} else {
		mask = (1 << uint(f.CounterWidth)) - 1
	}
	return &PMU{
		feats:    f,
		counters: make([]counter, f.NumCounters),
		mask:     mask,
	}
}

// Features returns the PMU's capability set.
func (p *PMU) Features() Features { return p.feats }

// NumCounters returns the number of programmable counters.
func (p *PMU) NumCounters() int { return len(p.counters) }

func (p *PMU) check(idx int) {
	if idx < 0 || idx >= len(p.counters) {
		panic(fmt.Sprintf("pmu: counter index %d out of range [0,%d)", idx, len(p.counters)))
	}
}

// Configure programs counter idx. Programming clears any pending
// overflow on that counter but preserves its value (software writes the
// value separately, as on real hardware).
func (p *PMU) Configure(idx int, cfg CounterConfig) {
	p.check(idx)
	p.syncRetire() // deferred retirements precede the reprogramming
	c := &p.counters[idx]
	c.cfg = cfg
	if ob := cfg.OverflowBit; ob >= 0 && ob < 64 {
		c.threshold = 1 << uint(ob)
	} else {
		c.threshold = 0
	}
	p.pending &^= 1 << uint(idx)
	p.rebuildDispatch(idx)
}

// rebuildDispatch re-derives counter idx's dispatch-table bits from
// its current programming.
func (p *PMU) rebuildDispatch(idx int) {
	bit := uint64(1) << uint(idx)
	for i := range p.events {
		p.events[i].watchers &^= bit
	}
	cfg := p.counters[idx].cfg
	if !cfg.Enabled || int(cfg.Event) >= int(NumEvents) {
		return
	}
	if cfg.CountUser {
		p.events[cfg.Event].watchers |= bit
	}
	if cfg.CountKernel {
		p.events[int(NumEvents)+int(cfg.Event)].watchers |= bit
	}
}

// Config returns counter idx's current programming.
func (p *PMU) Config(idx int) CounterConfig {
	p.check(idx)
	return p.counters[idx].cfg
}

// Read returns counter idx's current value (rdpmc and kernel MSR reads
// both see this).
func (p *PMU) Read(idx int) uint64 {
	p.check(idx)
	p.flushRetire() // the window survives: reading mutates nothing
	return p.counters[idx].value
}

// ReadAndReset destructively reads counter idx (enhancement e2). It
// panics if the feature is absent; callers gate on Features.
func (p *PMU) ReadAndReset(idx int) uint64 {
	if !p.feats.DestructiveReads {
		panic("pmu: destructive read without DestructiveReads feature")
	}
	p.check(idx)
	p.syncRetire()
	v := p.counters[idx].value
	p.counters[idx].value = 0
	p.pending &^= 1 << uint(idx)
	return v
}

// Write sets counter idx's value. Only the low WriteWidth bits are
// honored, mirroring Intel's MSR write restriction; higher bits are
// silently dropped (the caller — the kernel — is responsible for
// keeping values in range, which is exactly the constraint LiMiT's
// overflow folding exists to satisfy).
func (p *PMU) Write(idx int, v uint64) {
	p.check(idx)
	p.syncRetire()
	var wmask uint64
	if p.feats.WriteWidth >= 64 {
		wmask = ^uint64(0)
	} else {
		wmask = (1 << uint(p.feats.WriteWidth)) - 1
	}
	p.counters[idx].value = v & wmask
	p.pending &^= 1 << uint(idx)
}

// WriteLimit returns the exclusive upper bound on values Write can
// represent.
func (p *PMU) WriteLimit() uint64 {
	if p.feats.WriteWidth >= 64 {
		return ^uint64(0)
	}
	return 1 << uint(p.feats.WriteWidth)
}

// AddEvent advances every enabled counter whose event and ring filter
// match by n, records ground truth, and accumulates pending overflow
// interrupts for counters that crossed their overflow threshold.
//
// The ground-truth update and the watcher lookup share one table
// index; when no counter watches (ev, ring) — the dominant case in the
// interpreter hot loop — the call costs two indexed adds and a branch.
func (p *PMU) AddEvent(ring Ring, ev Event, n uint64) {
	e := &p.events[int(ring)*int(NumEvents)+int(ev)]
	e.truth += n
	if e.watchers != 0 {
		p.addSlow(ev, e.watchers, n)
	}
}

// AddUser and AddKernel are AddEvent with the ring fixed. The generic
// form is one parameter over the inlining budget; these two fit, so
// the interpreter's per-instruction count sites and the kernel-work
// accounting pay no call in the nobody-watching case.

// AddUser records ev in the user ring.
func (p *PMU) AddUser(ev Event, n uint64) {
	e := &p.events[ev]
	e.truth += n
	if e.watchers != 0 {
		p.addUserSlow(ev, n)
	}
}

// AddKernel records ev in the kernel ring.
func (p *PMU) AddKernel(ev Event, n uint64) {
	e := &p.events[ev+NumEvents] // Event is uint8; NumEvents+ev < 2*NumEvents fits
	e.truth += n
	if e.watchers != 0 {
		p.addKernelSlow(ev, n)
	}
}

// AddRetire records one instruction's retirement: instrs in
// EvInstructions and cycles in EvCycles, both in the user ring, in
// that order. It is AddUser twice with the slow paths fused — the
// interpreter calls it once per instruction, and in limit mode both
// events are watched, so the split form paid two out-of-line calls
// per instruction.
//
// Callers must keep instrs <= max(1, cycles) — true of any real
// retirement stream (an instruction costs at least one cycle, and the
// batched-compute op retires one instruction per cycle) — so bounding
// cycles bounds both deferral lanes.
//
// The guard admits a step into the deferral window only when cycles is
// below the remaining budget — a stricter test than the window
// requires (< 2^12 would do), chosen because it folds the
// budget-nonzero and step-small-enough checks into one compare that
// fits the inlining budget. Ground truth defers along with the bumps;
// every observer flushes first.
func (p *PMU) AddRetire(instrs, cycles uint64) {
	if p.defRetire>>48 > cycles {
		p.defRetire += instrs<<24 + cycles - 1<<48
		return
	}
	p.addRetireSlow(instrs, cycles)
}

// Deferral window sizing: a deferred step may add at most deferStepMask
// to each retirement event (larger steps — e.g. big batched compute
// ops — take the immediate path), so a budget of rem>>deferStepBits
// steps can never move a counter rem closer to a crossing. The window
// cap doubles as the budget bound that lets AddRetire fold its two
// guards (budget nonzero, step small enough) into one compare.
const (
	deferStepBits  = 12
	deferStepMask  = 1<<deferStepBits - 1
	maxDeferWindow = deferStepMask
)

// addRetireSlow is the out-of-window retirement path: record ground
// truth, fold any deferred sums, bump the watching counters, and open
// a fresh window.
//
//go:noinline
func (p *PMU) addRetireSlow(instrs, cycles uint64) {
	p.events[EvInstructions].truth += instrs
	p.events[EvCycles].truth += cycles
	p.flushRetire()
	p.bumpRetire(instrs, cycles)
	p.recomputeDeferBudget()
}

// flushRetire folds the deferred retirement sums into ground truth and
// the watched counters. Modular addition commutes with itself, and the
// window invariant guarantees no crossing occurred inside it, so the
// fold is byte-exact with per-step bumping. Watcher sets cannot have
// changed while the sums accumulated: reprogramming syncs first.
func (p *PMU) flushRetire() {
	d := p.defRetire
	i, c := d>>24&(1<<24-1), d&(1<<24-1)
	if i|c == 0 {
		return
	}
	p.defRetire = d >> 48 << 48 // sums applied; the window survives
	p.events[EvInstructions].truth += i
	p.events[EvCycles].truth += c
	p.bumpRetire(i, c)
}

// syncRetire flushes and kills the deferral window; used by every
// operation that mutates counter values, programming, or watcher sets.
// The next AddRetire recomputes a fresh budget.
func (p *PMU) syncRetire() {
	p.flushRetire()
	p.defRetire = 0
}

// recomputeDeferBudget sizes the deferral window: the number of
// ≤deferStepMask-per-event steps guaranteed not to bring any watched
// retirement counter to its overflow threshold or full-width wrap —
// the two transitions bump can observe. Counters without a threshold
// never produce pending bits, so only their final modular value
// matters, which deferral preserves exactly; they impose no bound.
func (p *PMU) recomputeDeferBudget() {
	p.defRetire = 0
	im := p.events[EvInstructions].watchers
	cm := p.events[EvCycles].watchers
	if (im|cm)&uncoreBit != 0 {
		// The socket block is shared across cores and read without
		// this PMU's involvement; its mirror cannot lag.
		return
	}
	w := uint64(maxDeferWindow)
	for m := im | cm; m != 0; {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		c := &p.counters[i]
		if c.threshold == 0 {
			continue
		}
		rem := p.mask - c.value + 1 // distance to full-width wrap
		if rem == 0 {
			rem = ^uint64(0) // 64-bit counter at zero: wrap unreachable
		}
		if th := c.threshold; c.value < th && th-c.value < rem {
			rem = th - c.value
		}
		if steps := rem >> deferStepBits; steps < w {
			w = steps
		}
	}
	p.defRetire = w << 48
}

// bumpRetire applies a retirement pair (or a folded window of them) to
// every watching counter, in the same ascending-index order per event
// as the pre-dispatch-table scan.
func (p *PMU) bumpRetire(instrs, cycles uint64) {
	m := p.events[EvInstructions].watchers
	if m&uncoreBit != 0 {
		p.uncore.add(EvInstructions, instrs)
		m &^= uncoreBit
	}
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		p.bump(i, instrs)
	}
	m = p.events[EvCycles].watchers
	if m&uncoreBit != 0 {
		p.uncore.add(EvCycles, cycles)
		m &^= uncoreBit
	}
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		p.bump(i, cycles)
	}
}

// addUserSlow and addKernelSlow are addSlow with the watcher mask
// re-read from the fixed ring's table half. They repeat addSlow's body
// rather than call it: the watched path runs twice per instruction
// when cycles and instructions are both counted (the limit-mode
// default), and the extra frame was visible in profiles.

//go:noinline
func (p *PMU) addUserSlow(ev Event, n uint64) {
	if ev <= EvInstructions {
		p.syncRetire() // this add may advance a retirement-watching counter
	}
	m := p.events[ev].watchers
	if m&uncoreBit != 0 {
		p.uncore.add(ev, n)
		m &^= uncoreBit
	}
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		p.bump(i, n)
	}
}

//go:noinline
func (p *PMU) addKernelSlow(ev Event, n uint64) {
	if ev <= EvInstructions {
		p.syncRetire() // a CountUser+CountKernel counter may also watch retirement
	}
	m := p.events[int(NumEvents)+int(ev)].watchers
	if m&uncoreBit != 0 {
		p.uncore.add(ev, n)
		m &^= uncoreBit
	}
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		p.bump(i, n)
	}
}

// addSlow handles the uncore mirror and watched counters. Kept out of
// line so AddEvent inlines into every count site — the common "nobody
// watches this event" case is then add, load, branch, with no call.
func (p *PMU) addSlow(ev Event, m, n uint64) {
	if ev <= EvInstructions {
		p.syncRetire()
	}
	if m&uncoreBit != 0 {
		p.uncore.add(ev, n)
		m &^= uncoreBit
	}
	// Counters advance in ascending index order, exactly as the
	// pre-dispatch-table scan did.
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		p.bump(i, n)
	}
}

// bump advances counter i by n with overflow-threshold crossing
// detection: the counter moved from below the threshold to at-or-above
// it, or wrapped the full width.
func (p *PMU) bump(i int, n uint64) {
	c := &p.counters[i]
	before := c.value
	c.value = (before + n) & p.mask
	if th := c.threshold; th != 0 {
		if (before < th && c.value >= th) || c.value < before {
			p.pending |= 1 << uint(i)
		}
	}
}

// TakePendingOverflows returns and clears the bitmask of counters with
// pending overflow interrupts. The machine loop calls this after every
// instruction and routes nonzero masks to the kernel's PMI handler.
func (p *PMU) TakePendingOverflows() uint64 {
	m := p.pending
	if m != 0 {
		p.pending = 0
	}
	return m
}

// HasPending reports whether any overflow interrupt is pending without
// consuming it.
func (p *PMU) HasPending() bool { return p.pending != 0 }

// GroundTruth returns the omniscient count of ev in ring since reset.
func (p *PMU) GroundTruth(ev Event, ring Ring) uint64 {
	p.flushRetire()
	return p.events[int(ring)*int(NumEvents)+int(ev)].truth
}

// GroundTruthTotal returns user+kernel ground truth for ev.
func (p *PMU) GroundTruthTotal(ev Event) uint64 {
	p.flushRetire()
	return p.events[ev].truth + p.events[int(NumEvents)+int(ev)].truth
}

// ResetGroundTruth zeroes the omniscient accumulators (counters and
// dispatch state are unaffected).
func (p *PMU) ResetGroundTruth() {
	p.flushRetire() // deferred retirements precede the reset
	for i := range p.events {
		p.events[i].truth = 0
	}
}
