// Machine throughput benchmarks: one benchmark per standard workload,
// each reporting simulated cycles per wall-clock second — the
// simulator's headline speed metric. CI runs these, emits
// BENCH_machine.json, and gates the ratio against the recorded seed
// baseline in bench/BENCH_machine_baseline.json (see that file and the
// machine-bench job in .github/workflows/ci.yml).
//
// Each iteration restores the workload's memory image from a snapshot
// and runs it on a fresh machine, mirroring how the runner's worker
// pools drive campaigns — so the number includes the per-run restore
// cost the COW snapshot work targets, not just the interpreter loop.
package limitsim_test

import (
	"testing"

	"limitsim/internal/machine"
	"limitsim/internal/tls"
	"limitsim/internal/workloads"
)

// reportSimRate attaches the simulated-cycles-per-wall-second metric.
func reportSimRate(b *testing.B, simCycles uint64) {
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(simCycles)/s/1e6, "Msimcyc/s")
	}
}

// benchMachineApp drives one pre-built App per iteration.
func benchMachineApp(b *testing.B, app *workloads.App, cores int) {
	snap := app.Space.Snapshot()
	var sim uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Space.Restore(snap)
		m := machine.New(machine.Config{NumCores: cores})
		app.Launch(m)
		res := m.Run(machine.RunLimits{})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		sim += res.Cycles
	}
	reportSimRate(b, sim)
}

func BenchmarkMachineMysql(b *testing.B) {
	benchMachineApp(b, workloads.BuildMySQL(workloads.DefaultMySQL(), workloads.LimitInstr()), 4)
}

func BenchmarkMachineApache(b *testing.B) {
	benchMachineApp(b, workloads.BuildApache(workloads.DefaultApache(), workloads.LimitInstr()), 4)
}

func BenchmarkMachineForkjoin(b *testing.B) {
	benchMachineApp(b, workloads.BuildForkJoin(workloads.DefaultForkJoin(), workloads.LimitInstr()), 4)
}

func BenchmarkMachineChurn(b *testing.B) {
	w := workloads.BuildChurn(workloads.ChurnConfig{})
	snap := w.Space.Snapshot()
	var sim uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Space.Restore(snap)
		m := machine.New(machine.Config{NumCores: 4})
		proc := m.Kern.NewProcess(w.Prog, w.Space)
		mgr := m.Kern.Spawn(proc, "churn-mgr", w.Entries[0], 12345)
		mgr.SetReg(tls.SlotReg, uint64(w.ManagerSlot(0)))
		res := m.Run(machine.RunLimits{})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		sim += res.Cycles
	}
	reportSimRate(b, sim)
}

var calibSink uint64

// BenchmarkHostCalibration is a fixed pure-Go splitmix64 loop with no
// simulator code in it. The machine-bench CI gate divides the workload
// speedups by the calibration ratio so a slower or faster CI runner
// does not masquerade as a simulator regression or improvement.
func BenchmarkHostCalibration(b *testing.B) {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			calibSink += z ^ (z >> 31)
		}
	}
}
